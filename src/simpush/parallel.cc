#include "simpush/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "simpush/topk.h"

namespace simpush {

void ForEachQueryChunked(
    ThreadPool& pool, const Graph& graph, const SimPushOptions& options,
    size_t num_items,
    const std::function<void(SimPushEngine&, size_t begin, size_t end)>&
        run_chunk) {
  const size_t workers = pool.num_threads();
  const size_t chunk = (num_items + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(num_items, begin + chunk);
    if (begin >= end) break;
    pool.Submit([&graph, &options, &run_chunk, begin, end] {
      SimPushEngine engine(graph, options);
      run_chunk(engine, begin, end);
    });
  }
  pool.Wait();
}

ParallelBatchStats ParallelQueryBatch(
    const Graph& graph, const SimPushOptions& options,
    const std::vector<NodeId>& queries, size_t num_threads,
    const std::function<void(NodeId, const SimPushResult&)>& on_result) {
  ParallelBatchStats stats;
  Timer wall;
  ThreadPool pool(num_threads);
  stats.num_threads = pool.num_threads();

  std::mutex result_mu;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  std::atomic<uint64_t> cpu_nanos{0};

  ForEachQueryChunked(
      pool, graph, options, queries.size(),
      [&](SimPushEngine& engine, size_t begin, size_t end) {
        SimPushResult result;  // Buffers reused across the whole chunk.
        for (size_t i = begin; i < end; ++i) {
          const NodeId u = queries[i];
          if (!engine.QueryInto(u, &result).ok()) {
            failed.fetch_add(1);
            continue;
          }
          ok.fetch_add(1);
          cpu_nanos.fetch_add(
              static_cast<uint64_t>(result.stats.total_seconds * 1e9));
          std::lock_guard<std::mutex> lock(result_mu);
          on_result(u, result);
        }
      });

  stats.queries_ok = ok.load();
  stats.queries_failed = failed.load();
  stats.cpu_query_seconds = cpu_nanos.load() / 1e9;
  stats.wall_seconds = wall.ElapsedSeconds();
  return stats;
}

StatusOr<std::vector<BatchTopKResult>> ParallelQueryBatchTopK(
    const Graph& graph, const SimPushOptions& options,
    const std::vector<NodeId>& queries, size_t k, size_t num_threads,
    ParallelBatchStats* stats) {
  std::vector<BatchTopKResult> results(queries.size());

  ParallelBatchStats local_stats;
  Timer wall;
  ThreadPool pool(num_threads);
  local_stats.num_threads = pool.num_threads();
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  std::atomic<uint64_t> cpu_nanos{0};

  ForEachQueryChunked(
      pool, graph, options, queries.size(),
      [&](SimPushEngine& engine, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const NodeId u = queries[i];
          auto topk = QueryTopK(&engine, u, k);
          if (!topk.ok()) {
            failed.fetch_add(1);
            continue;
          }
          ok.fetch_add(1);
          cpu_nanos.fetch_add(
              static_cast<uint64_t>(topk->stats.total_seconds * 1e9));
          results[i].query = u;
          results[i].topk.reserve(topk->entries.size());
          for (const TopKEntry& entry : topk->entries) {
            results[i].topk.emplace_back(entry.node, entry.score);
          }
        }
      });

  local_stats.queries_ok = ok.load();
  local_stats.queries_failed = failed.load();
  local_stats.cpu_query_seconds = cpu_nanos.load() / 1e9;
  local_stats.wall_seconds = wall.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;

  if (local_stats.queries_failed > 0) {
    return Status::InvalidArgument("batch contained invalid query nodes");
  }
  return results;
}

}  // namespace simpush
