#include "simpush/parallel.h"

#include <atomic>
#include <mutex>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "simpush/topk.h"

namespace simpush {

namespace {

// Derives a per-query seed so results do not depend on which worker or
// in which order a query runs.
uint64_t PerQuerySeed(uint64_t base_seed, NodeId query) {
  uint64_t state = base_seed ^ (0xBF58476D1CE4E5B9ULL * (query + 1));
  return SplitMix64(&state);
}

}  // namespace

ParallelBatchStats ParallelQueryBatch(
    const Graph& graph, const SimPushOptions& options,
    const std::vector<NodeId>& queries, size_t num_threads,
    const std::function<void(NodeId, const SimPushResult&)>& on_result) {
  ParallelBatchStats stats;
  Timer wall;
  ThreadPool pool(num_threads);
  stats.num_threads = pool.num_threads();

  std::mutex result_mu;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  std::atomic<uint64_t> cpu_nanos{0};

  // One task per query: engine construction is O(1) (index-free), and a
  // per-query engine pins the RNG stream to (seed, node) so the output
  // is identical for any thread count.
  ParallelFor(pool, 0, queries.size(), [&](size_t i) {
    const NodeId u = queries[i];
    SimPushOptions per_query = options;
    per_query.seed = PerQuerySeed(options.seed, u);
    SimPushEngine engine(graph, per_query);
    auto result = engine.Query(u);
    if (!result.ok()) {
      failed.fetch_add(1);
      return;
    }
    ok.fetch_add(1);
    cpu_nanos.fetch_add(
        static_cast<uint64_t>(result->stats.total_seconds * 1e9));
    std::lock_guard<std::mutex> lock(result_mu);
    on_result(u, *result);
  });

  stats.queries_ok = ok.load();
  stats.queries_failed = failed.load();
  stats.cpu_query_seconds = cpu_nanos.load() / 1e9;
  stats.wall_seconds = wall.ElapsedSeconds();
  return stats;
}

StatusOr<std::vector<BatchTopKResult>> ParallelQueryBatchTopK(
    const Graph& graph, const SimPushOptions& options,
    const std::vector<NodeId>& queries, size_t k, size_t num_threads,
    ParallelBatchStats* stats) {
  std::vector<BatchTopKResult> results(queries.size());

  ParallelBatchStats local_stats;
  Timer wall;
  ThreadPool pool(num_threads);
  local_stats.num_threads = pool.num_threads();
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  std::atomic<uint64_t> cpu_nanos{0};

  ParallelFor(pool, 0, queries.size(), [&](size_t i) {
    const NodeId u = queries[i];
    SimPushOptions per_query = options;
    per_query.seed = PerQuerySeed(options.seed, u);
    SimPushEngine engine(graph, per_query);
    auto topk = QueryTopK(&engine, u, k);
    if (!topk.ok()) {
      failed.fetch_add(1);
      return;
    }
    ok.fetch_add(1);
    cpu_nanos.fetch_add(
        static_cast<uint64_t>(topk->stats.total_seconds * 1e9));
    results[i].query = u;
    results[i].topk.reserve(topk->entries.size());
    for (const TopKEntry& entry : topk->entries) {
      results[i].topk.emplace_back(entry.node, entry.score);
    }
  });

  local_stats.queries_ok = ok.load();
  local_stats.queries_failed = failed.load();
  local_stats.cpu_query_seconds = cpu_nanos.load() / 1e9;
  local_stats.wall_seconds = wall.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;

  if (local_stats.queries_failed > 0) {
    return Status::InvalidArgument("batch contained invalid query nodes");
  }
  return results;
}

}  // namespace simpush
