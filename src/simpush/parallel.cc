#include "simpush/parallel.h"

#include <algorithm>
#include <atomic>

#include "common/annotations.h"
#include "common/timer.h"
#include "simpush/topk.h"

namespace simpush {

QueryExecutor::QueryExecutor(const Graph& graph,
                             const SimPushOptions& options,
                             size_t num_threads, size_t pool_capacity)
    : core_(graph, options),
      thread_pool_(num_threads),
      workspaces_(pool_capacity != 0 ? pool_capacity
                                     : thread_pool_.num_threads()) {}

void ForEachQueryChunked(
    const EngineCore& core, ThreadPool& thread_pool,
    WorkspacePool& workspaces, size_t num_items,
    const std::function<void(QueryRunner&, size_t begin, size_t end)>&
        run_chunk,
    const CancelToken* cancel) {
  const size_t workers = std::max<size_t>(1, thread_pool.num_threads());
  const size_t chunk = (num_items + workers - 1) / workers;

  // Completion is tracked per call, not via ThreadPool::Wait (which
  // drains the WHOLE pool): concurrent batches on one executor must
  // only wait for their own chunks.
  Mutex done_mu;
  CondVar chunk_done;
  size_t pending = 0;  // Guarded by done_mu (locals cannot be annotated).

  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(num_items, begin + chunk);
    if (begin >= end) break;
    {
      MutexLock lock(&done_mu);
      ++pending;
    }
    thread_pool.Submit(
        [&core, &workspaces, &run_chunk, &done_mu, &chunk_done, &pending,
         begin, end, cancel] {
          // One leased workspace serves the whole chunk; the lease
          // returns to the pool when the runner dies, so a later batch
          // on the same executor reuses the (warm) workspace. A chunk
          // whose token already fired never leases at all — an expired
          // batch must stop fanning out, not drain the pool.
          if (!ShouldStop(cancel)) {
            QueryRunner runner(core, workspaces, cancel);
            run_chunk(runner, begin, end);
          }
          MutexLock lock(&done_mu);
          if (--pending == 0) chunk_done.NotifyAll();
        });
  }
  MutexLock lock(&done_mu);
  while (pending != 0) chunk_done.Wait(done_mu);
}

void ForEachQueryChunked(
    QueryExecutor& executor, size_t num_items,
    const std::function<void(QueryRunner&, size_t begin, size_t end)>&
        run_chunk) {
  ForEachQueryChunked(executor.core(), executor.thread_pool(),
                      executor.workspaces(), num_items, run_chunk);
}

ParallelBatchStats ParallelQueryBatch(
    QueryExecutor& executor, const std::vector<NodeId>& queries,
    const std::function<void(NodeId, const SimPushResult&)>& on_result) {
  ParallelBatchStats stats;
  Timer wall;
  stats.num_threads = executor.num_threads();

  Mutex result_mu;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  std::atomic<uint64_t> cpu_nanos{0};

  ForEachQueryChunked(
      executor, queries.size(),
      [&](QueryRunner& runner, size_t begin, size_t end) {
        SimPushResult result;  // Buffers reused across the whole chunk.
        for (size_t i = begin; i < end; ++i) {
          const NodeId u = queries[i];
          if (!runner.QueryInto(u, &result).ok()) {
            failed.fetch_add(1);
            continue;
          }
          ok.fetch_add(1);
          cpu_nanos.fetch_add(
              static_cast<uint64_t>(result.stats.total_seconds * 1e9));
          MutexLock lock(&result_mu);
          on_result(u, result);
        }
      });

  stats.queries_ok = ok.load();
  stats.queries_failed = failed.load();
  stats.cpu_query_seconds = cpu_nanos.load() / 1e9;
  stats.wall_seconds = wall.ElapsedSeconds();
  return stats;
}

ParallelBatchStats ParallelQueryBatch(
    const Graph& graph, const SimPushOptions& options,
    const std::vector<NodeId>& queries, size_t num_threads,
    const std::function<void(NodeId, const SimPushResult&)>& on_result) {
  QueryExecutor executor(graph, options, num_threads);
  return ParallelQueryBatch(executor, queries, on_result);
}

StatusOr<std::vector<BatchTopKResult>> ParallelQueryBatchTopK(
    const EngineCore& core, ThreadPool& thread_pool,
    WorkspacePool& workspaces, const std::vector<NodeId>& queries, size_t k,
    ParallelBatchStats* stats, const CancelToken* cancel) {
  std::vector<BatchTopKResult> results(queries.size());

  ParallelBatchStats local_stats;
  Timer wall;
  local_stats.num_threads = thread_pool.num_threads();
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  std::atomic<uint64_t> cpu_nanos{0};

  ForEachQueryChunked(
      core, thread_pool, workspaces, queries.size(),
      [&](QueryRunner& runner, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          // Between queries is the cheapest place to notice a fired
          // token: skip the rest of the chunk instead of starting
          // queries whose results would be discarded.
          if (ShouldStop(cancel)) break;
          const NodeId u = queries[i];
          auto topk = QueryTopK(&runner, u, k);
          if (!topk.ok()) {
            failed.fetch_add(1);
            continue;
          }
          ok.fetch_add(1);
          cpu_nanos.fetch_add(
              static_cast<uint64_t>(topk->stats.total_seconds * 1e9));
          results[i].query = u;
          results[i].topk.reserve(topk->entries.size());
          for (const TopKEntry& entry : topk->entries) {
            results[i].topk.emplace_back(entry.node, entry.score);
          }
        }
      },
      cancel);

  local_stats.queries_ok = ok.load();
  local_stats.queries_failed = failed.load();
  local_stats.cpu_query_seconds = cpu_nanos.load() / 1e9;
  local_stats.wall_seconds = wall.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;

  // A fired token wins over the failure count: skipped chunks report
  // a deadline/cancel error, not a bogus invalid-node error. The
  // fired-query failures inside chunks carry the same token status.
  if (cancel != nullptr) {
    SIMPUSH_RETURN_NOT_OK(cancel->Check());
  }
  if (local_stats.queries_failed > 0) {
    return Status::InvalidArgument("batch contained invalid query nodes");
  }
  return results;
}

StatusOr<std::vector<BatchTopKResult>> ParallelQueryBatchTopK(
    QueryExecutor& executor, const std::vector<NodeId>& queries, size_t k,
    ParallelBatchStats* stats) {
  return ParallelQueryBatchTopK(executor.core(), executor.thread_pool(),
                                executor.workspaces(), queries, k, stats);
}

StatusOr<std::vector<BatchTopKResult>> ParallelQueryBatchTopK(
    const Graph& graph, const SimPushOptions& options,
    const std::vector<NodeId>& queries, size_t k, size_t num_threads,
    ParallelBatchStats* stats) {
  QueryExecutor executor(graph, options, num_threads);
  return ParallelQueryBatchTopK(executor, queries, k, stats);
}

}  // namespace simpush
