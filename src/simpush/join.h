// SimRank similarity join: enumerate node pairs whose SimRank exceeds a
// threshold, and the global top-N most-similar pairs. The paper's §6
// cites join processing (Maehara et al. [24], Tao et al. [30]) as a
// SimRank query shape adjacent to single-source; this module builds it
// on SimPush so the join inherits the index-free property (usable on a
// graph that changed a moment ago).
//
// Algorithm: one single-source query per candidate source node (skipping
// structurally hopeless sources), emitting each qualifying pair once
// (u < v). Per-query cost is SimPush's; the join is embarrassingly
// parallel across sources and runs on the ThreadPool.
//
// Soundness: a pair is emitted when s̃ >= threshold - ε. SimPush's
// estimate is one-sided (s̃ <= s), so with margin ε the join misses no
// pair with s >= threshold w.p. 1-δ per source; pairs within ε below
// the threshold may appear (the caller can post-filter with a finer ε).

#ifndef SIMPUSH_SIMPUSH_JOIN_H_
#define SIMPUSH_SIMPUSH_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "simpush/options.h"

namespace simpush {

/// One joined pair, u < v.
struct SimilarPair {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double score = 0;  ///< s̃(u, v) from u's single-source query.
};

/// Options for the join scans.
struct JoinOptions {
  /// Per-source query options. `epsilon` should be well below the join
  /// threshold (a coarse ε makes the emitted band proportionally wide).
  SimPushOptions query;
  /// Worker threads for the source fan-out (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Safety valve: abort with ResourceExhausted-like error when the
  /// result would exceed this many pairs (dense graphs + low threshold).
  size_t max_pairs = 10'000'000;

  Status Validate() const;
};

/// All pairs with s̃(u, v) >= threshold - ε, each emitted once (u < v),
/// sorted by descending score (ties by (u, v)).
StatusOr<std::vector<SimilarPair>> SimilarityJoin(const Graph& graph,
                                                  double threshold,
                                                  const JoinOptions& options);

/// Join restricted to the given source nodes: pairs (u, v) with
/// u ∈ sources, any v, s̃ >= threshold - ε. Pairs are deduplicated when
/// both endpoints are sources; ordering as in SimilarityJoin.
StatusOr<std::vector<SimilarPair>> SimilarityJoinFor(
    const Graph& graph, const std::vector<NodeId>& sources, double threshold,
    const JoinOptions& options);

/// The N globally most-similar distinct pairs (u < v), descending.
/// Ranking carries the per-query ±ε guarantee, so pairs within 2ε can
/// swap places relative to exact SimRank.
StatusOr<std::vector<SimilarPair>> TopPairs(const Graph& graph, size_t n,
                                            const JoinOptions& options);

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_JOIN_H_
