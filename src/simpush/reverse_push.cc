#include "simpush/reverse_push.h"

#include <algorithm>

#include "simpush/workspace.h"

namespace simpush {

Status ReversePush(const Graph& graph, const SourceGraph& gu,
                   const std::vector<double>& gamma, double sqrt_c,
                   double eps_h, QueryWorkspace* workspace,
                   std::vector<double>* scores, ReversePushStats* stats,
                   const CancelToken* cancel) {
  workspace->Prepare(graph.num_nodes());
  EpochArray<double>& current = workspace->dense_a;
  EpochArray<double>& next = workspace->dense_b;
  std::vector<NodeId>& current_touched = workspace->frontier_a;
  std::vector<NodeId>& next_touched = workspace->frontier_b;
  current.BeginEpoch();
  next.BeginEpoch();
  current_touched.clear();
  next_touched.clear();

  ReversePushStats local_stats;
  const uint32_t max_level = gu.max_level();
  uint32_t since_poll = 0;

  for (uint32_t level = max_level; level >= 1; --level) {
    // Inject the initial residues r^(ℓ)(w) = h^(ℓ)(u,w)·γ^(ℓ)(w) of the
    // attention nodes living on this level; they combine with residues
    // that arrived from deeper levels (§4.3's merged push).
    for (AttentionId id : gu.AttentionOnLevel(level)) {
      const AttentionNode& w = gu.attention_nodes()[id];
      const double residue = w.hitting_prob * gamma[id];
      if (residue == 0.0) continue;
      if (!current.IsSet(w.node)) {
        current.Set(w.node, residue);
        current_touched.push_back(w.node);
      } else {
        current.RawRef(w.node) += residue;
      }
    }

    for (NodeId vp : current_touched) {
      // Cancellation poll every kCancelCheckStride pushed nodes; the
      // poll reads state only, so an unfired token cannot perturb the
      // (fully deterministic) push order or the scores.
      if (++since_poll >= kCancelCheckStride) {
        since_poll = 0;
        SIMPUSH_RETURN_NOT_OK(CheckCancel(cancel));
      }
      const double residue = current.RawRef(vp);
      // Push threshold: √c·r^(ℓ')(v') >= ε_h (Algorithm 5 line 4);
      // below-threshold residue is dropped — that is the approximation
      // ĥ introduces.
      if (sqrt_c * residue < eps_h) continue;
      ++local_stats.pushes;
      for (NodeId v : graph.OutNeighbors(vp)) {
        ++local_stats.edges_traversed;
        const double share = sqrt_c * residue / graph.InDegree(v);
        if (level > 1) {
          if (!next.IsSet(v)) {
            next.Set(v, share);
            next_touched.push_back(v);
          } else {
            next.RawRef(v) += share;
          }
        } else {
          (*scores)[v] += share;
        }
      }
    }
    // The consumed level's residues are invalidated in O(1); the array
    // then serves as the next level's accumulator after the swap.
    current.BeginEpoch();
    current_touched.clear();
    std::swap(current, next);
    std::swap(current_touched, next_touched);
  }

  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

}  // namespace simpush
