#include "simpush/reverse_push.h"

#include <algorithm>

namespace simpush {

void ReversePushWorkspace::Prepare(NodeId num_nodes) {
  if (current_.size() < num_nodes) {
    current_.assign(num_nodes, 0.0);
    next_.assign(num_nodes, 0.0);
  }
  current_touched_.clear();
  next_touched_.clear();
}

void ReversePush(const Graph& graph, const SourceGraph& gu,
                 const std::vector<double>& gamma, double sqrt_c,
                 double eps_h, ReversePushWorkspace* workspace,
                 std::vector<double>* scores, ReversePushStats* stats) {
  workspace->Prepare(graph.num_nodes());
  auto& current = workspace->current();
  auto& next = workspace->next();
  auto& current_touched = workspace->current_touched();
  auto& next_touched = workspace->next_touched();

  ReversePushStats local_stats;
  const uint32_t max_level = gu.max_level();

  for (uint32_t level = max_level; level >= 1; --level) {
    // Inject the initial residues r^(ℓ)(w) = h^(ℓ)(u,w)·γ^(ℓ)(w) of the
    // attention nodes living on this level; they combine with residues
    // that arrived from deeper levels (§4.3's merged push).
    for (AttentionId id : gu.AttentionOnLevel(level)) {
      const AttentionNode& w = gu.attention_nodes()[id];
      const double residue = w.hitting_prob * gamma[id];
      if (residue == 0.0) continue;
      if (current[w.node] == 0.0) current_touched.push_back(w.node);
      current[w.node] += residue;
    }

    for (NodeId vp : current_touched) {
      const double residue = current[vp];
      current[vp] = 0.0;
      // Push threshold: √c·r^(ℓ')(v') >= ε_h (Algorithm 5 line 4);
      // below-threshold residue is dropped — that is the approximation
      // ĥ introduces.
      if (sqrt_c * residue < eps_h) continue;
      ++local_stats.pushes;
      for (NodeId v : graph.OutNeighbors(vp)) {
        ++local_stats.edges_traversed;
        const double share = sqrt_c * residue / graph.InDegree(v);
        if (level > 1) {
          if (next[v] == 0.0) next_touched.push_back(v);
          next[v] += share;
        } else {
          (*scores)[v] += share;
        }
      }
    }
    current_touched.clear();
    std::swap(current, next);
    std::swap(current_touched, next_touched);
  }
  // Drain any leftover marks so the workspace is clean for reuse.
  for (NodeId v : current_touched) current[v] = 0.0;
  current_touched.clear();

  if (stats != nullptr) *stats = local_stats;
}

}  // namespace simpush
