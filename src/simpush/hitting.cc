#include "simpush/hitting.h"

#include <algorithm>

namespace simpush {

namespace {
const HittingVector kEmptyVector;
}  // namespace

const HittingVector& HittingTable::VectorAt(uint32_t level, NodeId v) const {
  if (level >= per_level_.size()) return kEmptyVector;
  auto it = per_level_[level].find(v);
  return it == per_level_[level].end() ? kEmptyVector : it->second;
}

double HittingTable::Probability(uint32_t level, NodeId v,
                                 AttentionId target) const {
  const HittingVector& vec = VectorAt(level, v);
  auto it = std::lower_bound(
      vec.begin(), vec.end(), target,
      [](const auto& entry, AttentionId id) { return entry.first < id; });
  if (it == vec.end() || it->first != target) return 0.0;
  return it->second;
}

size_t HittingTable::NumVectors() const {
  size_t total = 0;
  for (const auto& level : per_level_) total += level.size();
  return total;
}

size_t HittingTable::NumEntries() const {
  size_t total = 0;
  for (const auto& level : per_level_) {
    for (const auto& [node, vec] : level) {
      (void)node;
      total += vec.size();
    }
  }
  return total;
}

HittingTable ComputeHittingTable(const Graph& graph, const SourceGraph& gu,
                                 double sqrt_c) {
  HittingTable table;
  const uint32_t max_level = gu.max_level();
  table.per_level_.resize(max_level + 1);
  if (max_level < 2) return table;  // No targets deeper than level 1.

  const size_t num_attention = gu.num_attention();
  // Dense scratch accumulator over attention ids with a touched list,
  // reused across nodes to avoid per-node allocation.
  std::vector<double> accum(num_attention, 0.0);
  std::vector<AttentionId> touched;
  // Byte masks over graph nodes, reused across levels:
  //   is_holder  — nodes of level+1 holding a nonzero vector;
  //   is_member  — nodes present on the current level of G_u;
  //   is_receiver— current-level nodes already queued for a pull.
  // Receivers are discovered by scanning the holders' out-edges, so a
  // level's cost is Σ outdeg(holders) + Σ indeg(receivers) instead of
  // an O(|G_u level|) sweep — holders cluster near the attention set.
  std::vector<uint8_t> is_holder(graph.num_nodes(), 0);
  std::vector<uint8_t> is_member(graph.num_nodes(), 0);
  std::vector<uint8_t> is_receiver(graph.num_nodes(), 0);
  std::vector<NodeId> receivers;

  // Self entries at the deepest level: h̃^(0)(w, w) = 1 for attention w
  // at levels 2..L (level-1 attention nodes are never ρ-targets).
  auto self_entry_level = [&](uint32_t level) {
    for (AttentionId id : gu.AttentionOnLevel(level)) {
      const AttentionNode& a = gu.attention_nodes()[id];
      table.per_level_[level][a.node].emplace_back(id, 1.0);
    }
  };
  self_entry_level(max_level);

  // Pull from level+1 into level, for level = L-1 .. 1.
  for (uint32_t level = max_level - 1; level >= 1; --level) {
    const auto& nodes_here = gu.Level(level);
    const auto& vectors_above = table.per_level_[level + 1];
    auto& vectors_here = table.per_level_[level];
    for (const auto& [node, vec] : vectors_above) {
      (void)vec;
      is_holder[node] = 1;
    }
    for (const auto& [node, h] : nodes_here) {
      (void)h;
      is_member[node] = 1;
    }
    // Receivers: current-level nodes with at least one holder
    // in-neighbor, found via the holders' out-edges; plus this level's
    // attention nodes, which must emit a self entry even when they pull
    // nothing (e.g. dangling nodes).
    receivers.clear();
    for (const auto& [holder, vec] : vectors_above) {
      (void)vec;
      for (NodeId v : graph.OutNeighbors(holder)) {
        if (is_member[v] && !is_receiver[v]) {
          is_receiver[v] = 1;
          receivers.push_back(v);
        }
      }
    }
    if (level >= 2) {
      for (AttentionId id : gu.AttentionOnLevel(level)) {
        const NodeId node = gu.attention_nodes()[id].node;
        if (!is_receiver[node]) {
          is_receiver[node] = 1;
          receivers.push_back(node);
        }
      }
    }
    for (NodeId v : receivers) {
      is_receiver[v] = 0;
      touched.clear();
      const uint32_t deg = graph.InDegree(v);
      // A dangling node (deg == 0) pulls nothing, but when it is an
      // attention node its self entry below must still be emitted so
      // shallower levels can see it.
      if (deg > 0) {
        const double scale = sqrt_c / deg;
        for (NodeId vp : graph.InNeighbors(v)) {
          if (!is_holder[vp]) continue;
          auto it = vectors_above.find(vp);
          for (const auto& [target, prob] : it->second) {
            if (accum[target] == 0.0) touched.push_back(target);
            accum[target] += prob * scale;
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      HittingVector vec;
      vec.reserve(touched.size() + 1);
      // Self entry when v is itself an attention node on this level
      // (level >= 2): its id is distinct from every pulled target id
      // (those are occurrences at deeper levels), so a plain sorted
      // merge of one element suffices.
      AttentionId self_id = 0;
      const bool has_self =
          level >= 2 && gu.LookupAttention(level, v, &self_id);
      bool self_inserted = false;
      for (AttentionId target : touched) {
        if (has_self && !self_inserted && self_id < target) {
          vec.emplace_back(self_id, 1.0);
          self_inserted = true;
        }
        vec.emplace_back(target, accum[target]);
        accum[target] = 0.0;
      }
      if (has_self && !self_inserted) vec.emplace_back(self_id, 1.0);
      if (!vec.empty()) vectors_here.emplace(v, std::move(vec));
    }
    for (const auto& [node, vec] : vectors_above) {
      (void)vec;
      is_holder[node] = 0;
    }
    for (const auto& [node, h] : nodes_here) {
      (void)h;
      is_member[node] = 0;
    }
    if (level == 1) break;  // uint32_t wrap guard.
  }
  return table;
}

}  // namespace simpush
