#include "simpush/hitting.h"

#include <algorithm>

#include "simpush/workspace.h"

namespace simpush {

HittingVector HittingTable::VectorAt(uint32_t level, NodeId v) const {
  if (level >= num_levels_) return {};
  const LevelVectors& vectors = per_level_[level];
  auto it = std::lower_bound(
      vectors.nodes.begin(), vectors.nodes.end(), v,
      [](const NodeSpan& span, NodeId node) { return span.node < node; });
  if (it == vectors.nodes.end() || it->node != v) return {};
  return {vectors.pool.data() + it->begin, vectors.pool.data() + it->end};
}

double HittingTable::Probability(uint32_t level, NodeId v,
                                 AttentionId target) const {
  const HittingVector vec = VectorAt(level, v);
  auto it = std::lower_bound(
      vec.begin(), vec.end(), target,
      [](const auto& entry, AttentionId id) { return entry.first < id; });
  if (it == vec.end() || it->first != target) return 0.0;
  return it->second;
}

size_t HittingTable::NumVectors() const {
  size_t total = 0;
  for (uint32_t level = 0; level < num_levels_; ++level) {
    total += per_level_[level].nodes.size();
  }
  return total;
}

size_t HittingTable::NumEntries() const {
  size_t total = 0;
  for (uint32_t level = 0; level < num_levels_; ++level) {
    total += per_level_[level].pool.size();
  }
  return total;
}

void HittingTable::Reset(uint32_t max_level) {
  const uint32_t levels = max_level + 1;
  if (per_level_.size() < levels) per_level_.resize(levels);
  for (uint32_t level = 0; level < std::max(levels, num_levels_); ++level) {
    per_level_[level].nodes.clear();
    per_level_[level].pool.clear();
  }
  num_levels_ = levels;
}

void ComputeHittingTable(const Graph& graph, const SourceGraph& gu,
                         double sqrt_c, QueryWorkspace* workspace,
                         HittingTable* table, const CancelToken* cancel) {
  workspace->Prepare(graph.num_nodes());
  const uint32_t max_level = gu.max_level();
  table->Reset(max_level);
  if (max_level < 2) return;  // No targets deeper than level 1.

  const size_t num_attention = gu.num_attention();
  // Dense scratch accumulator over attention ids with a touched list,
  // zero-restored after each node to avoid per-node clears.
  std::vector<double>& accum = workspace->attention_accum;
  if (accum.size() < num_attention) accum.resize(num_attention, 0.0);
  std::vector<AttentionId>& touched = workspace->attention_touched;
  // Epoch-stamped per-node scratch over graph nodes, one epoch per
  // level:
  //   holder_index — maps a node of level+1 holding a nonzero vector to
  //                  (index of its NodeSpan) + 1, so a pull reads the
  //                  holder's span without any hashing;
  //   member_marks — nodes present on the current level of G_u;
  //   receiver_marks — current-level nodes already queued for a pull.
  // Receivers are discovered by scanning the holders' out-edges, so a
  // level's cost is Σ outdeg(holders) + Σ indeg(receivers) instead of
  // an O(|G_u level|) sweep — holders cluster near the attention set.
  EpochArray<uint32_t>& holder_index = workspace->holder_index;
  EpochArray<uint8_t>& member_marks = workspace->member_marks;
  EpochArray<uint8_t>& receiver_marks = workspace->receiver_marks;
  std::vector<NodeId>& receivers = workspace->receivers;

  // Self entries at the deepest level: h̃^(0)(w, w) = 1 for attention w
  // at levels 2..L (level-1 attention nodes are never ρ-targets).
  // Attention ids are appended in node order by Source-Push, so the
  // resulting NodeSpans are already sorted by node.
  {
    HittingTable::LevelVectors& deepest = table->per_level_[max_level];
    for (AttentionId id : gu.AttentionOnLevel(max_level)) {
      const AttentionNode& a = gu.attention_nodes()[id];
      const uint32_t begin = static_cast<uint32_t>(deepest.pool.size());
      deepest.pool.emplace_back(id, 1.0);
      deepest.nodes.push_back({a.node, begin, begin + 1});
    }
    std::sort(deepest.nodes.begin(), deepest.nodes.end(),
              [](const HittingTable::NodeSpan& a,
                 const HittingTable::NodeSpan& b) { return a.node < b.node; });
  }

  // Pull from level+1 into level, for level = L-1 .. 1.
  uint32_t since_poll = 0;
  for (uint32_t level = max_level - 1; level >= 1; --level) {
    const HittingTable::LevelVectors& above = table->per_level_[level + 1];
    HittingTable::LevelVectors& here = table->per_level_[level];
    holder_index.BeginEpoch();
    member_marks.BeginEpoch();
    receiver_marks.BeginEpoch();
    for (uint32_t i = 0; i < above.nodes.size(); ++i) {
      holder_index.Set(above.nodes[i].node, i + 1);
    }
    for (const auto& [node, h] : gu.Level(level)) {
      (void)h;
      member_marks.Set(node, 1);
    }
    // Receivers: current-level nodes with at least one holder
    // in-neighbor, found via the holders' out-edges; plus this level's
    // attention nodes, which must emit a self entry even when they pull
    // nothing (e.g. dangling nodes).
    receivers.clear();
    for (const HittingTable::NodeSpan& holder : above.nodes) {
      for (NodeId v : graph.OutNeighbors(holder.node)) {
        if (member_marks.IsSet(v) && !receiver_marks.IsSet(v)) {
          receiver_marks.Set(v, 1);
          receivers.push_back(v);
        }
      }
    }
    if (level >= 2) {
      for (AttentionId id : gu.AttentionOnLevel(level)) {
        const NodeId node = gu.attention_nodes()[id].node;
        if (!receiver_marks.IsSet(node)) {
          receiver_marks.Set(node, 1);
          receivers.push_back(node);
        }
      }
    }
    for (NodeId v : receivers) {
      // Cancellation stride over pulls; on a fired token the table is
      // left partial — the caller re-checks the token and discards it.
      if (++since_poll >= kCancelCheckStride) {
        since_poll = 0;
        if (ShouldStop(cancel)) return;
      }
      touched.clear();
      const uint32_t deg = graph.InDegree(v);
      // A dangling node (deg == 0) pulls nothing, but when it is an
      // attention node its self entry below must still be emitted so
      // shallower levels can see it.
      if (deg > 0) {
        const double scale = sqrt_c / deg;
        for (NodeId vp : graph.InNeighbors(v)) {
          const uint32_t span_index = holder_index.Get(vp);
          if (span_index == 0) continue;
          const HittingTable::NodeSpan& span = above.nodes[span_index - 1];
          for (uint32_t e = span.begin; e < span.end; ++e) {
            const auto& [target, prob] = above.pool[e];
            if (accum[target] == 0.0) touched.push_back(target);
            accum[target] += prob * scale;
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      const uint32_t begin = static_cast<uint32_t>(here.pool.size());
      // Self entry when v is itself an attention node on this level
      // (level >= 2): its id is distinct from every pulled target id
      // (those are occurrences at deeper levels), so a plain sorted
      // merge of one element suffices.
      AttentionId self_id = 0;
      const bool has_self =
          level >= 2 && gu.LookupAttention(level, v, &self_id);
      bool self_inserted = false;
      for (AttentionId target : touched) {
        if (has_self && !self_inserted && self_id < target) {
          here.pool.emplace_back(self_id, 1.0);
          self_inserted = true;
        }
        here.pool.emplace_back(target, accum[target]);
        accum[target] = 0.0;
      }
      if (has_self && !self_inserted) here.pool.emplace_back(self_id, 1.0);
      const uint32_t end = static_cast<uint32_t>(here.pool.size());
      if (end > begin) here.nodes.push_back({v, begin, end});
    }
    std::sort(here.nodes.begin(), here.nodes.end(),
              [](const HittingTable::NodeSpan& a,
                 const HittingTable::NodeSpan& b) { return a.node < b.node; });
    if (level == 1) break;  // uint32_t wrap guard.
  }
}

HittingTable ComputeHittingTable(const Graph& graph, const SourceGraph& gu,
                                 double sqrt_c) {
  QueryWorkspace workspace;
  HittingTable table;
  ComputeHittingTable(graph, gu, sqrt_c, &workspace, &table,
                      /*cancel=*/nullptr);
  return table;
}

}  // namespace simpush
