#include "simpush/hitting.h"

#include <algorithm>
#include <bit>
#include <span>

#include "simpush/workspace.h"

namespace simpush {

HittingVector HittingTable::VectorAt(uint32_t level, NodeId v) const {
  if (level >= num_levels_) return {};
  const LevelVectors& vectors = per_level_[level];
  auto it = std::lower_bound(
      vectors.nodes.begin(), vectors.nodes.end(), v,
      [](const NodeSpan& span, NodeId node) { return span.node < node; });
  if (it == vectors.nodes.end() || it->node != v) return {};
  return {vectors.pool.data() + it->begin, vectors.pool.data() + it->end};
}

double HittingTable::Probability(uint32_t level, NodeId v,
                                 AttentionId target) const {
  const HittingVector vec = VectorAt(level, v);
  auto it = std::lower_bound(
      vec.begin(), vec.end(), target,
      [](const auto& entry, AttentionId id) { return entry.first < id; });
  if (it == vec.end() || it->first != target) return 0.0;
  return it->second;
}

size_t HittingTable::NumVectors() const {
  size_t total = 0;
  for (uint32_t level = 0; level < num_levels_; ++level) {
    total += per_level_[level].nodes.size();
  }
  return total;
}

size_t HittingTable::NumEntries() const {
  size_t total = 0;
  for (uint32_t level = 0; level < num_levels_; ++level) {
    total += per_level_[level].pool.size();
  }
  return total;
}

void HittingTable::Reset(uint32_t max_level) {
  const uint32_t levels = max_level + 1;
  if (per_level_.size() < levels) per_level_.resize(levels);
  for (uint32_t level = 0; level < std::max(levels, num_levels_); ++level) {
    per_level_[level].nodes.clear();
    per_level_[level].pool.clear();
  }
  num_levels_ = levels;
}

void ComputeHittingTable(const Graph& graph, const SourceGraph& gu,
                         double sqrt_c, QueryWorkspace* workspace,
                         HittingTable* table, const CancelToken* cancel) {
  workspace->Prepare(graph.num_nodes());
  const uint32_t max_level = gu.max_level();
  table->Reset(max_level);
  if (max_level < 2) return;  // No targets deeper than level 1.

  const size_t num_attention = gu.num_attention();
  // Dense scratch accumulator over attention ids, paired with a bitmask
  // of touched ids. The merge loop below runs ~10 pool entries per
  // stored entry, so its per-entry cost decides the whole stage: the
  // bitmask makes it branchless (unconditional OR instead of the
  // unpredictable accum[t] == 0 test a touched-list needs), and
  // iterating set bits at emit time yields the targets already in
  // ascending id order — the per-receiver sort disappears. Both the
  // accumulator slots and the mask words are zero-restored during the
  // emit scan, so the scratch stays clean without per-receiver clears.
  std::vector<double>& accum = workspace->attention_accum;
  if (accum.size() < num_attention) accum.resize(num_attention, 0.0);
  const size_t words = (num_attention + 63) / 64;
  std::vector<uint64_t>& bits = workspace->scratch_bits;
  bits.assign(words, 0);  // Clean even after a cancelled predecessor.
  // Epoch-stamped per-node scratch over graph nodes, one epoch per
  // level:
  //   holder_span — maps a node of level+1 holding a nonzero vector to
  //                 its packed pool-span bounds (begin << 32 | end), so
  //                 a pull reads the holder's entries after ONE random
  //                 access (no NodeSpan chase, no hashing);
  //   member_marks — nodes present on the current level of G_u;
  //   receiver_marks — current-level nodes already queued for a pull.
  // Receivers are discovered by scanning the holders' out-edges, so a
  // level's cost is Σ outdeg(holders) + Σ indeg(receivers) instead of
  // an O(|G_u level|) sweep — holders cluster near the attention set.
  EpochArray<uint64_t>& holder_span = workspace->holder_span;
  EpochArray<uint8_t>& member_marks = workspace->member_marks;
  EpochArray<uint8_t>& receiver_marks = workspace->receiver_marks;
  std::vector<NodeId>& receivers = workspace->receivers;

  // Self entries at the deepest level: h̃^(0)(w, w) = 1 for attention w
  // at levels 2..L (level-1 attention nodes are never ρ-targets).
  // Attention ids are appended in node order by Source-Push, so the
  // resulting NodeSpans are already sorted by node.
  {
    HittingTable::LevelVectors& deepest = table->per_level_[max_level];
    for (AttentionId id : gu.AttentionOnLevel(max_level)) {
      const AttentionNode& a = gu.attention_nodes()[id];
      const uint32_t begin = static_cast<uint32_t>(deepest.pool.size());
      deepest.pool.emplace_back(id, 1.0);
      deepest.nodes.push_back({a.node, begin, begin + 1});
    }
    std::sort(deepest.nodes.begin(), deepest.nodes.end(),
              [](const HittingTable::NodeSpan& a,
                 const HittingTable::NodeSpan& b) { return a.node < b.node; });
  }

  // Pull from level+1 into level, for level = L-1 .. 1.
  uint32_t since_poll = 0;
  for (uint32_t level = max_level - 1; level >= 1; --level) {
    const HittingTable::LevelVectors& above = table->per_level_[level + 1];
    HittingTable::LevelVectors& here = table->per_level_[level];
    holder_span.BeginEpoch();
    member_marks.BeginEpoch();
    receiver_marks.BeginEpoch();
    for (const HittingTable::NodeSpan& holder : above.nodes) {
      // end > begin for every stored span, so a packed value is never 0
      // and Get() == 0 cleanly reads as "not a holder".
      holder_span.Set(holder.node, (static_cast<uint64_t>(holder.begin) << 32) |
                                       holder.end);
    }
    for (const auto& [node, h] : gu.Level(level)) {
      (void)h;
      member_marks.Set(node, 1);
    }
    // Receivers: current-level nodes with at least one holder
    // in-neighbor, found via the holders' out-edges; plus this level's
    // attention nodes, which must emit a self entry even when they pull
    // nothing (e.g. dangling nodes).
    receivers.clear();
    for (const HittingTable::NodeSpan& holder : above.nodes) {
      for (NodeId v : graph.OutNeighbors(holder.node)) {
        if (member_marks.IsSet(v) && !receiver_marks.IsSet(v)) {
          receiver_marks.Set(v, 1);
          receivers.push_back(v);
        }
      }
    }
    if (level >= 2) {
      for (AttentionId id : gu.AttentionOnLevel(level)) {
        const NodeId node = gu.attention_nodes()[id].node;
        if (!receiver_marks.IsSet(node)) {
          receiver_marks.Set(node, 1);
          receivers.push_back(node);
        }
      }
    }
    // Pull in ascending node order: the receivers' in-CSR rows are then
    // streamed sequentially (instead of hopping with discovery order),
    // and the spans appended to here.nodes come out already sorted —
    // the per-level sort below disappears. Each receiver's accumulation
    // is independent, so the reorder changes no value.
    std::sort(receivers.begin(), receivers.end());
    for (NodeId v : receivers) {
      // Cancellation stride over pulls; on a fired token the table is
      // left partial — the caller re-checks the token and discards it.
      if (++since_poll >= kCancelCheckStride) {
        since_poll = 0;
        if (ShouldStop(cancel)) return;
      }
      const uint32_t deg = graph.InDegree(v);
      size_t wlo = words, whi = 0;
      // A dangling node (deg == 0) pulls nothing, but when it is an
      // attention node its self entry below must still be emitted so
      // shallower levels can see it.
      if (deg > 0) {
        const double scale = sqrt_c / deg;
        const std::span<const NodeId> in = graph.InNeighbors(v);
        // Two-stage software pipeline over the in-neighbors: the
        // holder_span probes are random node-indexed accesses, hinted
        // kSpanLookahead ahead; at kPoolLookahead (close enough that its
        // span bounds are already cached from the first stage) the span
        // bounds are re-read to hint the pool entries themselves — the
        // level's pool outgrows L2, so the merge loop's first touch of
        // each span is otherwise a stall.
        constexpr size_t kSpanLookahead = 8;
        constexpr size_t kPoolLookahead = 3;
        const size_t n_in = in.size();
        for (size_t i = 0; i < n_in; ++i) {
          if (i + kSpanLookahead < n_in) {
            holder_span.Prefetch(in[i + kSpanLookahead]);
          }
          if (i + kPoolLookahead < n_in) {
            const uint64_t ahead = holder_span.Get(in[i + kPoolLookahead]);
#if defined(__GNUC__) || defined(__clang__)
            if (ahead != 0) {
              __builtin_prefetch(&above.pool[ahead >> 32], /*rw=*/0,
                                 /*locality=*/1);
            }
#endif
          }
          const uint64_t packed = holder_span.Get(in[i]);
          if (packed == 0) continue;
          const uint32_t end = static_cast<uint32_t>(packed);
          for (uint32_t e = static_cast<uint32_t>(packed >> 32); e < end; ++e) {
            const auto& [target, prob] = above.pool[e];
            accum[target] += prob * scale;
            const size_t w = target >> 6;
            bits[w] |= uint64_t{1} << (target & 63);
            if (w < wlo) wlo = w;
            if (w > whi) whi = w;
          }
        }
      }
      const uint32_t begin = static_cast<uint32_t>(here.pool.size());
      // Self entry when v is itself an attention node on this level
      // (level >= 2): its id is distinct from every pulled target id
      // (those are occurrences at deeper levels), so a plain sorted
      // merge of one element suffices.
      AttentionId self_id = 0;
      const bool has_self =
          level >= 2 && gu.LookupAttention(level, v, &self_id);
      bool self_inserted = false;
      for (size_t wi = wlo; wi <= whi; ++wi) {
        uint64_t m = bits[wi];
        if (m == 0) continue;
        bits[wi] = 0;
        do {
          const AttentionId target =
              static_cast<AttentionId>(wi * 64 + std::countr_zero(m));
          m &= m - 1;
          if (has_self && !self_inserted && self_id < target) {
            here.pool.emplace_back(self_id, 1.0);
            self_inserted = true;
          }
          here.pool.emplace_back(target, accum[target]);
          accum[target] = 0.0;
        } while (m != 0);
      }
      if (has_self && !self_inserted) here.pool.emplace_back(self_id, 1.0);
      const uint32_t end = static_cast<uint32_t>(here.pool.size());
      if (end > begin) here.nodes.push_back({v, begin, end});
    }
    // here.nodes is sorted by construction: receivers were processed in
    // ascending node order, so VectorAt's binary search needs no sort.
    if (level == 1) break;  // uint32_t wrap guard.
  }
}

HittingTable ComputeHittingTable(const Graph& graph, const SourceGraph& gu,
                                 double sqrt_c) {
  QueryWorkspace workspace;
  HittingTable table;
  ComputeHittingTable(graph, gu, sqrt_c, &workspace, &table,
                      /*cancel=*/nullptr);
  return table;
}

}  // namespace simpush
