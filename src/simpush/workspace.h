// QueryWorkspace: every piece of per-query scratch the SimPush stages
// need, owned in one place so a long-lived SimPushEngine answers
// queries with zero steady-state heap allocations.
//
// Ownership map (stage → scratch):
//   Source-Push (Alg. 2)   — level_tally (walk level detection),
//                            dense_a/dense_b + frontier_a/frontier_b
//                            (level-wise residue propagation),
//                            source_graph (the G_u being built).
//   Hitting (Alg. 3)       — holder_span/member_marks/receiver_marks,
//                            receivers, attention_accum/scratch_bits,
//                            hitting_table.
//   Last-meeting (Alg. 4)  — gamma_scratch, gamma.
//   Reverse-Push (Alg. 5)  — dense_a/dense_b + frontier_a/frontier_b
//                            again (the stages are sequential).
//
// All buffers grow to a high-water mark and are logically cleared per
// query by epoch bumps or O(touched) clears — never O(n) sweeps.

#ifndef SIMPUSH_SIMPUSH_WORKSPACE_H_
#define SIMPUSH_SIMPUSH_WORKSPACE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/epoch_array.h"
#include "graph/graph.h"
#include "simpush/hitting.h"
#include "simpush/source_graph.h"

namespace simpush {

/// Flat open-addressing (level, node) → count tally for Source-Push
/// level detection. Slots are epoch-stamped, so starting a new query is
/// O(1); the table only allocates while growing to its high-water size.
class LevelNodeTally {
 public:
  /// O(1) logical clear (epoch bump).
  void NewRound();

  /// Increments the count of `key` and returns the new value.
  /// `key` packs (level << 32 | node).
  uint64_t Increment(uint64_t key);

  /// Live entries in the current round (for tests).
  size_t size() const { return size_; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t count = 0;
    uint32_t epoch = 0;
  };

  void Grow();

  std::vector<Slot> slots_;  // Power-of-two size.
  size_t size_ = 0;          // Live entries this round.
  uint32_t epoch_ = 1;
};

/// Reusable scratch for the γ computation (Algorithm 4).
struct GammaScratch {
  // Dense per-target accumulator + touched list.
  std::vector<double> acc;
  std::vector<AttentionId> touched;
  // pending[lvl]: (target, amount) pairs to subtract from targets at
  // level lvl — the ρ(j)·h̃(i-j)² terms of Eq. 11, emitted once when a
  // ρ-carrier is finalized instead of being re-scanned per level.
  std::vector<std::vector<std::pair<AttentionId, double>>> pending;

  void Prepare(size_t num_attention, uint32_t max_level) {
    if (acc.size() < num_attention) acc.resize(num_attention, 0.0);
    touched.clear();
    if (pending.size() < max_level + 1) pending.resize(max_level + 1);
    for (auto& level : pending) level.clear();
  }
};

/// All per-query scratch of the SimPush engine. One instance per engine
/// (or per worker thread); not thread-safe.
class QueryWorkspace {
 public:
  /// Readies the workspace for one query on an n-node graph: grows the
  /// dense arrays to n (no-op after the first query) and starts fresh
  /// epochs. O(1) once warm.
  void Prepare(NodeId num_nodes);

  // --- Dense per-node value scratch, shared by Source-Push (levels) and
  // Reverse-Push (residues); both consume it level by level.
  EpochArray<double> dense_a;
  EpochArray<double> dense_b;
  std::vector<NodeId> frontier_a;
  std::vector<NodeId> frontier_b;

  // --- Source-Push level detection.
  LevelNodeTally level_tally;

  // --- Hitting-table construction. holder_span maps a node of level
  // ℓ+1 holding a nonzero vector to its packed pool-span bounds
  // (begin << 32 | end) — the pull loop reads the span in ONE random
  // access instead of index-then-NodeSpan chasing; member/receiver
  // marks track the current level's G_u membership and queued pulls.
  EpochArray<uint64_t> holder_span;
  EpochArray<uint8_t> member_marks;
  EpochArray<uint8_t> receiver_marks;
  std::vector<NodeId> receivers;
  std::vector<double> attention_accum;    // Zero-restored after each use.

  // --- Touched-set bitmask, shared by the Source-Push frontier scatter
  // (node-indexed) and the hitting pull merge (attention-id-indexed);
  // the stages run sequentially and each re-zeroes it on entry
  // (assign() reuses capacity, so steady state stays allocation-free).
  // Scatter loops OR into it unconditionally — no per-write branch —
  // and the emit scan walks set bits in index order, which both
  // restores the zeros and yields sorted output without a sort.
  std::vector<uint64_t> scratch_bits;

  // --- Last-meeting probabilities.
  GammaScratch gamma_scratch;
  std::vector<double> gamma;

  // --- Per-query data products, pooled across queries.
  SourceGraph source_graph;
  HittingTable hitting_table;
};

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_WORKSPACE_H_
