// Single-pair SimRank s(u, v) on top of the SimPush machinery — one of
// the extensions §7 of the paper points toward ("batch SimRank
// processing" / cheaper query shapes).
//
// The source side is computed exactly as in Algorithm 1 stages 1-2:
// attention sets A_u^(ℓ), hitting probabilities h^(ℓ)(u,w), and
// last-meeting corrections γ^(ℓ)(w), giving residues
// r^(ℓ)(w) = h^(ℓ)(u,w)·γ^(ℓ)(w). Instead of Reverse-Push over all of
// G (stage 3, O(m log(1/ε))), the v side is estimated by Monte Carlo:
// a √c-walk from v visits one node per step, and accumulating r^(ℓ)(w)
// whenever the ℓ-th step lands on an attention occurrence w yields an
// unbiased estimate of
//     s⁺(u,v) = Σ_ℓ Σ_{w∈A_u^(ℓ)} h^(ℓ)(u,w)·γ^(ℓ)(w)·h^(ℓ)(v,w)
// (Equation 7), because P(walk at w at step ℓ) = h^(ℓ)(v,w). Each
// walk's accumulator is bounded by B = √c/(1-√c), so Hoeffding gives
// T = B²·ln(2/δ)/(2ε²) walks for an ±ε estimate of s⁺.
//
// The session amortizes the source side across many v, which is the
// point: checking u against a candidate set costs O(T·L) per candidate
// instead of a full single-source query.

#ifndef SIMPUSH_SIMPUSH_SINGLE_PAIR_H_
#define SIMPUSH_SIMPUSH_SINGLE_PAIR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "simpush/options.h"

namespace simpush {

/// Result of one pair estimate.
struct SinglePairResult {
  double score = 0;        ///< s̃(u, v); 1 when u == v.
  uint64_t walks_used = 0; ///< Monte-Carlo walks from v.
};

/// Reusable source-side state for pair queries u-vs-many.
class SinglePairSession {
 public:
  /// Prepares the source side for query node u (stages 1-2 of
  /// Algorithm 1). The graph must outlive the session.
  static StatusOr<SinglePairSession> Create(const Graph& graph, NodeId u,
                                            const SimPushOptions& options);

  /// Estimates s(u, v). `num_walks` == 0 uses the Hoeffding default for
  /// the session's (ε, δ).
  StatusOr<SinglePairResult> Estimate(NodeId v, uint64_t num_walks = 0);

  /// The query node this session serves.
  NodeId source() const { return source_; }
  /// Max level L of the underlying source graph.
  uint32_t max_level() const { return max_level_; }
  /// Number of attention occurrences backing the residue tables.
  size_t num_attention() const { return num_attention_; }
  /// Hoeffding walk count used when Estimate is called with 0.
  uint64_t default_walks() const { return default_walks_; }

 private:
  SinglePairSession(const Graph& graph, NodeId u,
                    const SimPushOptions& options);

  const Graph* graph_;
  NodeId source_;
  SimPushOptions options_;
  double sqrt_c_ = 0;
  uint32_t max_level_ = 0;
  size_t num_attention_ = 0;
  uint64_t default_walks_ = 0;
  Rng rng_;
  // residues_[ℓ-1]: (node, r^(ℓ)(node)) for attention occurrences on ℓ,
  // sorted by node — the per-step lookup in Estimate binary searches.
  std::vector<std::vector<std::pair<NodeId, double>>> residues_;
};

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_SINGLE_PAIR_H_
