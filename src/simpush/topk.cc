#include "simpush/topk.h"

#include <algorithm>

namespace simpush {

StatusOr<TopKResult> QueryTopK(QueryRunner* runner, NodeId u, size_t k) {
  SIMPUSH_ASSIGN_OR_RETURN(SimPushResult full, runner->Query(u));
  TopKResult result;
  result.stats = full.stats;

  const std::vector<double>& scores = full.scores;
  std::vector<NodeId> order;
  order.reserve(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) {
    if (v != u && scores[v] > 0.0) order.push_back(v);
  }
  const size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  result.entries.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    result.entries.push_back({order[i], scores[order[i]]});
  }
  return result;
}

}  // namespace simpush
