// Public entry point: the SimPush engine (Algorithm 1).
//
// Example:
//   simpush::SimPushOptions options;
//   options.epsilon = 0.02;
//   simpush::SimPushEngine engine(graph, options);
//   auto result = engine.Query(u);
//   if (result.ok()) { use result->scores[v] ... }
//
// A long-lived engine owns a QueryWorkspace holding every piece of
// per-query scratch, so repeated queries perform zero steady-state heap
// allocations when the caller also reuses the result via QueryInto.
// Results depend only on (options.seed, query node) — not on engine
// reuse, thread placement, or query order.

#ifndef SIMPUSH_SIMPUSH_SIMPUSH_H_
#define SIMPUSH_SIMPUSH_SIMPUSH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "simpush/options.h"
#include "simpush/reverse_push.h"
#include "simpush/source_push.h"
#include "simpush/workspace.h"

namespace simpush {

/// Per-query statistics exposed for the paper's §5.2 inline claims
/// (avg L, attention-set size) and the Table 3 stage breakdown.
struct SimPushQueryStats {
  uint32_t max_level = 0;          ///< L.
  size_t num_attention = 0;        ///< |A_u|.
  size_t gu_node_occurrences = 0;  ///< |G_u| node occurrences (levels >= 1).
  uint64_t walks_sampled = 0;      ///< Level-detection walks.
  uint64_t reverse_pushes = 0;
  uint64_t reverse_edges = 0;
  double source_push_seconds = 0;  ///< Stage 1 (Algorithm 2).
  double gamma_seconds = 0;        ///< Stage 2 (Algorithms 3-4).
  double reverse_push_seconds = 0; ///< Stage 3 (Algorithm 5).
  double total_seconds = 0;
};

/// Result of one single-source query.
struct SimPushResult {
  /// s̃(u, v) for every v; scores[u] == 1.
  std::vector<double> scores;
  SimPushQueryStats stats;
};

/// Index-free single-source SimRank engine. Holds only reusable query
/// scratch space — no precomputation touches the graph, so graph updates
/// simply mean constructing a new engine over the new Graph (O(1) cost
/// beyond the CSR build).
class SimPushEngine {
 public:
  /// The graph must outlive the engine.
  SimPushEngine(const Graph& graph, const SimPushOptions& options);

  /// Answers an approximate single-source SimRank query (Definition 1):
  /// |s̃(u,v) - s(u,v)| <= ε for all v w.p. >= 1-δ.
  StatusOr<SimPushResult> Query(NodeId u);

  /// Like Query, but writes into a caller-owned result whose buffers are
  /// reused — the steady-state hot path for a query loop. After warm-up
  /// (first query on this engine + result pair), performs zero heap
  /// allocations. Produces bit-identical scores to Query.
  Status QueryInto(NodeId u, SimPushResult* result);

  const SimPushOptions& options() const { return options_; }
  const DerivedParams& derived() const { return derived_; }

 private:
  const Graph& graph_;
  SimPushOptions options_;
  DerivedParams derived_;
  QueryWorkspace workspace_;
};

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_SIMPUSH_H_
