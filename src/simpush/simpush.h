// Public entry point: the SimPush engine (Algorithm 1).
//
// Example:
//   simpush::SimPushOptions options;
//   options.epsilon = 0.02;
//   simpush::SimPushEngine engine(graph, options);
//   auto result = engine.Query(u);
//   if (result.ok()) { use result->scores[v] ... }
//
// SimPushEngine is a thin single-threaded facade over the real engine
// split (see docs/architecture.md):
//   EngineCore     — immutable configuration + derived constants,
//                    shareable across threads (engine_core.h);
//   QueryWorkspace — all mutable per-query scratch (workspace.h),
//                    poolable via WorkspacePool (workspace_pool.h);
//   QueryRunner    — one core + one workspace, executes queries
//                    (query_runner.h).
// The facade owns one core, one workspace, and one runner, so repeated
// queries perform zero steady-state heap allocations when the caller
// also reuses the result via QueryInto. Concurrent callers should share
// one EngineCore and a WorkspacePool instead of one engine per thread.
// Results depend only on (options.seed, node) — not on engine reuse,
// workspace identity, thread placement, or query order.

#ifndef SIMPUSH_SIMPUSH_SIMPUSH_H_
#define SIMPUSH_SIMPUSH_SIMPUSH_H_

#include "common/status.h"
#include "graph/graph.h"
#include "simpush/engine_core.h"
#include "simpush/options.h"
#include "simpush/query_runner.h"
#include "simpush/workspace.h"

namespace simpush {

/// Index-free single-source SimRank engine: one EngineCore + one
/// QueryWorkspace + one QueryRunner, for single-threaded callers. No
/// precomputation touches the graph, so graph updates simply mean
/// constructing a new engine over the new Graph (O(1) cost beyond the
/// CSR build). Not thread-safe; see EngineCore/WorkspacePool for the
/// concurrent serving shape.
class SimPushEngine {
 public:
  /// The graph must outlive the engine.
  SimPushEngine(const Graph& graph, const SimPushOptions& options)
      : core_(graph, options), runner_(core_, &workspace_) {}

  /// Answers an approximate single-source SimRank query (Definition 1):
  /// |s̃(u,v) - s(u,v)| <= ε for all v w.p. >= 1-δ.
  StatusOr<SimPushResult> Query(NodeId u) { return runner_.Query(u); }

  /// Like Query, but writes into a caller-owned result whose buffers are
  /// reused — the steady-state hot path for a query loop. After warm-up
  /// (first query on this engine + result pair), performs zero heap
  /// allocations. Produces bit-identical scores to Query.
  Status QueryInto(NodeId u, SimPushResult* result) {
    return runner_.QueryInto(u, result);
  }

  const SimPushOptions& options() const { return core_.options(); }
  const DerivedParams& derived() const { return core_.derived(); }

  /// The immutable core, shareable with concurrent runners.
  const EngineCore& core() const { return core_; }
  /// The engine's runner (for APIs that operate on runners).
  QueryRunner& runner() { return runner_; }

 private:
  EngineCore core_;
  QueryWorkspace workspace_;
  QueryRunner runner_;
};

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_SIMPUSH_H_
