// WorkspacePool: a bounded checkout/return pool of QueryWorkspaces.
//
// One QueryWorkspace holds all mutable per-query scratch (O(n) dense
// arrays at their high-water marks), so the pool — not the worker or
// request count — bounds peak query-scratch memory: at most `capacity`
// workspaces ever exist, and a request stream of any width shares them.
// Workspaces keep their grown buffers between leases, so a warm pool
// serves queries with zero steady-state heap allocations no matter
// which workspace a query lands on.
//
// Thread-safety contract: Acquire/TryAcquire/Return and the counters
// are safe to call from any thread. The QueryWorkspace handed out by a
// lease is exclusively owned by the holder until the lease is released
// — the pool never touches a leased workspace. The pool must outlive
// every lease drawn from it.

#ifndef SIMPUSH_SIMPUSH_WORKSPACE_POOL_H_
#define SIMPUSH_SIMPUSH_WORKSPACE_POOL_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/deadline.h"
#include "simpush/workspace.h"

namespace simpush {

class WorkspacePool;

/// Move-only RAII handle to a checked-out QueryWorkspace. Returns the
/// workspace to its pool on destruction (or explicit Release()).
class WorkspaceLease {
 public:
  /// An empty lease (no workspace); usable as a "not holding" state.
  WorkspaceLease() = default;
  /// Transfers ownership; `other` becomes empty.
  WorkspaceLease(WorkspaceLease&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        workspace_(std::exchange(other.workspace_, nullptr)) {}
  /// Releases any held workspace, then takes over `other`'s.
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept;
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  /// Returns the workspace to its pool.
  ~WorkspaceLease() { Release(); }

  /// The leased workspace; nullptr for an empty lease.
  QueryWorkspace* get() const { return workspace_; }
  /// Member access on the leased workspace; precondition: non-empty.
  QueryWorkspace* operator->() const { return workspace_; }
  /// True when the lease holds a workspace.
  explicit operator bool() const { return workspace_ != nullptr; }

  /// Returns the workspace to the pool early; the lease becomes empty.
  void Release();

 private:
  friend class WorkspacePool;
  WorkspaceLease(WorkspacePool* pool, QueryWorkspace* workspace)
      : pool_(pool), workspace_(workspace) {}

  WorkspacePool* pool_ = nullptr;
  QueryWorkspace* workspace_ = nullptr;
};

/// Bounded pool of lazily-created QueryWorkspaces.
class WorkspacePool {
 public:
  /// At most `capacity` workspaces will ever exist (0 = hardware
  /// concurrency, min 1). Workspaces are created on first demand, so an
  /// over-provisioned pool costs nothing until the concurrency is real.
  explicit WorkspacePool(size_t capacity = 0);

  /// Checks out a workspace, blocking while `capacity` leases are
  /// already outstanding.
  WorkspaceLease Acquire();

  /// Cancellation-aware variant: while the pool is exhausted, the wait
  /// wakes periodically to poll `cancel`; a fired token returns an
  /// EMPTY lease instead of a workspace (a request whose deadline
  /// expired in the queue must not tie up scratch memory). A null
  /// `cancel` behaves exactly like Acquire().
  WorkspaceLease Acquire(const CancelToken* cancel);

  /// Non-blocking variant: an empty lease when the pool is exhausted.
  WorkspaceLease TryAcquire();

  /// Maximum number of simultaneously leased workspaces.
  size_t capacity() const { return capacity_; }

  /// Leases currently held (leak check: 0 when all work has drained).
  size_t outstanding() const;

  /// Workspaces materialized so far (<= capacity; peak-memory gauge).
  size_t created() const;

 private:
  friend class WorkspaceLease;
  void Return(QueryWorkspace* workspace) SIMPUSH_EXCLUDES(mu_);
  // Pops an idle workspace or creates one; nullptr when the pool is
  // exhausted. The REQUIRES annotation is the machine-checked form of
  // the "-Locked" naming convention: callers must hold mu_.
  QueryWorkspace* TakeLocked() SIMPUSH_REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar workspace_returned_;
  // Stable storage.
  std::vector<std::unique_ptr<QueryWorkspace>> all_ SIMPUSH_GUARDED_BY(mu_);
  std::vector<QueryWorkspace*> idle_ SIMPUSH_GUARDED_BY(mu_);
  size_t outstanding_ SIMPUSH_GUARDED_BY(mu_) = 0;
};

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_WORKSPACE_POOL_H_
