// Last-meeting probabilities γ^(ℓ)(w) within G_u (Definition 4,
// Equations 9-11, Algorithm 4): the probability that two √c-walks from
// attention node w, confined to G_u, never meet at an attention node on
// any deeper level.

#ifndef SIMPUSH_SIMPUSH_LAST_MEETING_H_
#define SIMPUSH_SIMPUSH_LAST_MEETING_H_

#include <vector>

#include "common/deadline.h"
#include "simpush/hitting.h"
#include "simpush/source_graph.h"

namespace simpush {

class QueryWorkspace;

/// Computes γ^(ℓ)(w) for every attention occurrence into `gamma`
/// (indexed by AttentionId), reusing the workspace's scratch. Values are
/// clamped to [0, 1] against floating-point drift; mathematically they
/// lie there already. Allocation-free once the workspace is warm.
///
/// `cancel`, when non-null, is polled every kCancelCheckStride
/// attention occurrences; a fired token returns early with `gamma`
/// only partially overwritten — the caller re-checks the token and
/// discards it. An unfired token leaves the result bit-identical.
void ComputeLastMeetingProbabilities(const SourceGraph& gu,
                                     const HittingTable& hitting,
                                     QueryWorkspace* workspace,
                                     std::vector<double>* gamma,
                                     const CancelToken* cancel = nullptr);

/// Convenience overload for tests and one-shot callers.
std::vector<double> ComputeLastMeetingProbabilities(
    const SourceGraph& gu, const HittingTable& hitting);

/// Computes γ for a single attention occurrence (Algorithm 4 verbatim);
/// used by tests to cross-check the batch version.
double ComputeGammaFor(const SourceGraph& gu, const HittingTable& hitting,
                       AttentionId id);

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_LAST_MEETING_H_
