// Source-Push (Algorithm 2): detects the max level L via √c-walk
// sampling, then performs level-wise residue propagation of the hitting
// probabilities h^(ℓ)(u, ·) along in-edges, building G_u and the
// attention sets A_u^(ℓ).

#ifndef SIMPUSH_SIMPUSH_SOURCE_PUSH_H_
#define SIMPUSH_SIMPUSH_SOURCE_PUSH_H_

#include <cstdint>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "simpush/options.h"
#include "simpush/source_graph.h"

namespace simpush {

class QueryWorkspace;

/// Statistics reported by one Source-Push invocation.
struct SourcePushStats {
  uint32_t detected_level = 0;   ///< L (after capping by L*).
  uint64_t walks_sampled = 0;    ///< Level-detection walks actually run.
  size_t gu_node_occurrences = 0;
  size_t num_attention = 0;
};

/// Runs Algorithm 2 for query node u into `gu` (typically the one owned
/// by `workspace`, but any SourceGraph works — it is Reset first).
/// `params` carries ε_h, L*, and the walk budget; `rng` supplies the
/// level-detection randomness. Allocation-free once the workspace and
/// `gu` are warm.
///
/// `cancel`, when non-null, is polled every kCancelCheckStride walks
/// (level detection) and pushed occurrences (propagation); a fired
/// token aborts with kCancelled/kDeadlineExceeded. The poll only reads
/// state — a run whose token never fires is bit-identical to a run
/// with cancel == nullptr (see common/deadline.h).
Status SourcePushInto(const Graph& graph, NodeId u,
                      const SimPushOptions& options,
                      const DerivedParams& params, Rng* rng,
                      QueryWorkspace* workspace, SourceGraph* gu,
                      SourcePushStats* stats,
                      const CancelToken* cancel = nullptr);

/// Convenience overload for tests and one-shot callers: allocates its
/// own workspace and returns G_u by value.
StatusOr<SourceGraph> SourcePush(const Graph& graph, NodeId u,
                                 const SimPushOptions& options,
                                 const DerivedParams& params, Rng* rng,
                                 SourcePushStats* stats);

}  // namespace simpush

#endif  // SIMPUSH_SIMPUSH_SOURCE_PUSH_H_
