#include "simpush/single_pair.h"

#include <algorithm>
#include <cmath>

#include "simpush/hitting.h"
#include "simpush/last_meeting.h"
#include "simpush/source_push.h"

namespace simpush {

SinglePairSession::SinglePairSession(const Graph& graph, NodeId u,
                                     const SimPushOptions& options)
    : graph_(&graph),
      source_(u),
      options_(options),
      rng_(options.seed ^ (0x9E3779B97F4A7C15ULL * (u + 1))) {}

StatusOr<SinglePairSession> SinglePairSession::Create(
    const Graph& graph, NodeId u, const SimPushOptions& options) {
  SIMPUSH_RETURN_NOT_OK(options.Validate());
  if (u >= graph.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  SinglePairSession session(graph, u, options);
  const DerivedParams params = ComputeDerivedParams(options);
  session.sqrt_c_ = params.sqrt_c;

  // Stages 1-2 of Algorithm 1: attention discovery + γ correction.
  SourcePushStats sp_stats;
  Rng source_rng = session.rng_.Fork();
  auto gu = SourcePush(graph, u, options, params, &source_rng, &sp_stats);
  if (!gu.ok()) return gu.status();
  std::vector<double> gamma(gu->num_attention(), 1.0);
  if (options.use_gamma_correction) {
    HittingTable hitting = ComputeHittingTable(graph, *gu, params.sqrt_c);
    gamma = ComputeLastMeetingProbabilities(*gu, hitting);
  }

  session.max_level_ = gu->max_level();
  session.num_attention_ = gu->num_attention();
  session.residues_.assign(gu->max_level(), {});
  for (AttentionId id = 0; id < gu->num_attention(); ++id) {
    const AttentionNode& attention = gu->attention_nodes()[id];
    // Levels are 1..L; store at index level-1.
    session.residues_[attention.level - 1].emplace_back(
        attention.node, attention.hitting_prob * gamma[id]);
  }
  // Attention occurrences arrive in node order per level already, but
  // sort defensively — Estimate's lookup relies on it.
  for (auto& level : session.residues_) {
    std::sort(level.begin(), level.end());
  }

  // Hoeffding walk budget: each walk's accumulated residue lies in
  // [0, B] with B = √c/(1-√c), so T = B²·ln(2/δ)/(2ε²) gives ±ε w.p.
  // 1-δ for the Monte-Carlo half of the estimate.
  const double bound = params.sqrt_c / (1.0 - params.sqrt_c);
  session.default_walks_ = static_cast<uint64_t>(
      std::ceil(bound * bound * std::log(2.0 / options.delta) /
                (2.0 * options.epsilon * options.epsilon)));
  if (session.default_walks_ == 0) session.default_walks_ = 1;
  return session;
}

StatusOr<SinglePairResult> SinglePairSession::Estimate(NodeId v,
                                                       uint64_t num_walks) {
  if (v >= graph_->num_nodes()) {
    return Status::InvalidArgument("target node out of range");
  }
  SinglePairResult result;
  if (v == source_) {
    result.score = 1.0;
    return result;
  }
  if (num_walks == 0) num_walks = default_walks_;
  result.walks_used = num_walks;
  if (max_level_ == 0) {
    result.score = 0.0;  // no attention nodes -> s⁺ below ε_h everywhere
    return result;
  }

  double total = 0.0;
  for (uint64_t i = 0; i < num_walks; ++i) {
    NodeId current = v;
    for (uint32_t level = 1; level <= max_level_; ++level) {
      // √c-walk step: stop w.p. 1-√c, else jump to a random in-neighbor.
      if (!rng_.NextBernoulli(sqrt_c_)) break;
      const uint32_t degree = graph_->InDegree(current);
      if (degree == 0) break;
      current = graph_->InNeighborAt(
          current, static_cast<uint32_t>(rng_.NextBounded(degree)));
      const auto& level_residues = residues_[level - 1];
      auto it = std::lower_bound(
          level_residues.begin(), level_residues.end(), current,
          [](const auto& entry, NodeId node) { return entry.first < node; });
      if (it != level_residues.end() && it->first == current) {
        total += it->second;
      }
    }
  }
  result.score = total / static_cast<double>(num_walks);
  return result;
}

}  // namespace simpush
