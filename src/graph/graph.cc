#include "graph/graph.h"

#include <algorithm>

namespace simpush {

size_t Graph::MemoryBytes() const {
  return out_offsets_.capacity() * sizeof(EdgeId) +
         in_offsets_.capacity() * sizeof(EdgeId) +
         out_targets_.capacity() * sizeof(NodeId) +
         in_sources_.capacity() * sizeof(NodeId);
}

Status Graph::Validate() const {
  if (out_offsets_.size() != static_cast<size_t>(num_nodes_) + 1 ||
      in_offsets_.size() != static_cast<size_t>(num_nodes_) + 1) {
    return Status::Internal("offset array size mismatch");
  }
  if (out_offsets_.front() != 0 || in_offsets_.front() != 0) {
    return Status::Internal("offsets must start at 0");
  }
  if (out_offsets_.back() != out_targets_.size() ||
      in_offsets_.back() != in_sources_.size()) {
    return Status::Internal("offsets must end at edge count");
  }
  if (out_targets_.size() != in_sources_.size()) {
    return Status::Internal("out/in edge counts differ");
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (out_offsets_[v] > out_offsets_[v + 1] ||
        in_offsets_[v] > in_offsets_[v + 1]) {
      return Status::Internal("offsets not monotone");
    }
  }
  for (NodeId t : out_targets_) {
    if (t >= num_nodes_) return Status::Internal("edge target out of range");
  }
  for (NodeId s : in_sources_) {
    if (s >= num_nodes_) return Status::Internal("edge source out of range");
  }
  return Status::OK();
}

Graph::DegreeStats Graph::ComputeDegreeStats() const {
  DegreeStats stats;
  if (num_nodes_ == 0) return stats;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const uint32_t out_deg = OutDegree(v);
    const uint32_t in_deg = InDegree(v);
    stats.max_out_degree = std::max(stats.max_out_degree, out_deg);
    stats.max_in_degree = std::max(stats.max_in_degree, in_deg);
    if (out_deg == 0) ++stats.num_sink_nodes;
    if (in_deg == 0) ++stats.num_source_nodes;
  }
  stats.avg_out_degree =
      static_cast<double>(num_edges()) / static_cast<double>(num_nodes_);
  return stats;
}

}  // namespace simpush
