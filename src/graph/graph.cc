#include "graph/graph.h"

#include <algorithm>

namespace simpush {

size_t Graph::MemoryBytes() const {
  return out_offsets_.capacity() * sizeof(EdgeId) +
         in_offsets_.capacity() * sizeof(EdgeId) +
         out_targets_.capacity() * sizeof(NodeId) +
         in_sources_.capacity() * sizeof(NodeId);
}

Status Graph::Validate() const {
  if (out_offsets_.size() != static_cast<size_t>(num_nodes_) + 1 ||
      in_offsets_.size() != static_cast<size_t>(num_nodes_) + 1) {
    return Status::Internal("offset array size mismatch");
  }
  if (out_offsets_.front() != 0 || in_offsets_.front() != 0) {
    return Status::Internal("offsets must start at 0");
  }
  if (out_offsets_.back() != out_targets_.size() ||
      in_offsets_.back() != in_sources_.size()) {
    return Status::Internal("offsets must end at edge count");
  }
  if (out_targets_.size() != in_sources_.size()) {
    return Status::Internal("out/in edge counts differ");
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (out_offsets_[v] > out_offsets_[v + 1] ||
        in_offsets_[v] > in_offsets_[v + 1]) {
      return Status::Internal("offsets not monotone");
    }
  }
  for (NodeId t : out_targets_) {
    if (t >= num_nodes_) return Status::Internal("edge target out of range");
  }
  for (NodeId s : in_sources_) {
    if (s >= num_nodes_) return Status::Internal("edge source out of range");
  }
  return Status::OK();
}

StatusOr<Graph> Graph::FromSortedCsr(NodeId num_nodes,
                                     std::vector<EdgeId> out_offsets,
                                     std::vector<NodeId> out_targets,
                                     bool symmetric) {
  if (out_offsets.size() != static_cast<size_t>(num_nodes) + 1 ||
      out_offsets.front() != 0 || out_offsets.back() != out_targets.size()) {
    return Status::InvalidArgument("malformed out-CSR offsets");
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (out_offsets[v] > out_offsets[v + 1]) {
      return Status::InvalidArgument("out-CSR offsets not monotone");
    }
    for (EdgeId e = out_offsets[v]; e < out_offsets[v + 1]; ++e) {
      if (out_targets[e] >= num_nodes) {
        return Status::InvalidArgument("out-CSR target out of range");
      }
      if (e > out_offsets[v] && out_targets[e - 1] > out_targets[e]) {
        return Status::InvalidArgument("out-CSR adjacency not sorted");
      }
    }
  }

  Graph g;
  g.num_nodes_ = num_nodes;
  g.is_symmetric_ = symmetric;
  g.out_offsets_ = std::move(out_offsets);
  g.out_targets_ = std::move(out_targets);

  // In-CSR via counting sort on target. Scanning sources in ascending
  // order keeps every in-adjacency run sorted — the canonical order the
  // registry's reproducible snapshots rely on.
  const size_t m = g.out_targets_.size();
  g.in_offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  g.in_sources_.resize(m);
  for (NodeId t : g.out_targets_) ++g.in_offsets_[t + 1];
  for (NodeId v = 0; v < num_nodes; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  {
    std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (NodeId v = 0; v < num_nodes; ++v) {
      for (EdgeId e = g.out_offsets_[v]; e < g.out_offsets_[v + 1]; ++e) {
        g.in_sources_[cursor[g.out_targets_[e]]++] = v;
      }
    }
  }
  // No Validate() call: the loop above already checked every out-side
  // invariant, and the in-CSR is correct by construction (counting
  // sort over in-range targets) — this runs on every hot-swap rebuild,
  // so a second full pass over the edge arrays would be pure waste.
  return g;
}

StatusOr<Graph> Graph::FromSortedCsrPair(NodeId num_nodes,
                                         std::vector<EdgeId> out_offsets,
                                         std::vector<NodeId> out_targets,
                                         std::vector<EdgeId> in_offsets,
                                         std::vector<NodeId> in_sources,
                                         bool symmetric) {
  if (out_offsets.size() != static_cast<size_t>(num_nodes) + 1 ||
      out_offsets.front() != 0 || out_offsets.back() != out_targets.size()) {
    return Status::InvalidArgument("malformed out-CSR offsets");
  }
  if (in_offsets.size() != static_cast<size_t>(num_nodes) + 1 ||
      in_offsets.front() != 0 || in_offsets.back() != in_sources.size()) {
    return Status::InvalidArgument("malformed in-CSR offsets");
  }
  if (out_targets.size() != in_sources.size()) {
    return Status::InvalidArgument("out/in edge counts differ");
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (out_offsets[v] > out_offsets[v + 1] ||
        in_offsets[v] > in_offsets[v + 1]) {
      return Status::InvalidArgument("CSR offsets not monotone");
    }
  }
  // Deliberately no per-edge pass: re-verifying every target/source
  // would reinstate exactly the O(m) cost the delta-publish caller just
  // avoided. See the header comment for the caller's obligations.
  Graph g;
  g.num_nodes_ = num_nodes;
  g.is_symmetric_ = symmetric;
  g.out_offsets_ = std::move(out_offsets);
  g.out_targets_ = std::move(out_targets);
  g.in_offsets_ = std::move(in_offsets);
  g.in_sources_ = std::move(in_sources);
  return g;
}

Graph::DegreeStats Graph::ComputeDegreeStats() const {
  DegreeStats stats;
  if (num_nodes_ == 0) return stats;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const uint32_t out_deg = OutDegree(v);
    const uint32_t in_deg = InDegree(v);
    stats.max_out_degree = std::max(stats.max_out_degree, out_deg);
    stats.max_in_degree = std::max(stats.max_in_degree, in_deg);
    if (out_deg == 0) ++stats.num_sink_nodes;
    if (in_deg == 0) ++stats.num_source_nodes;
  }
  stats.avg_out_degree =
      static_cast<double>(num_edges()) / static_cast<double>(num_nodes_);
  return stats;
}

}  // namespace simpush
