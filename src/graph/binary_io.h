// Binary graph serialization: a compact CSR dump that loads in O(m)
// with no parsing, for repeated benchmark runs over the same graph.
//
// Format (little-endian):
//   magic "SPG1" | u32 flags | u32 n | u64 m | u64 out_offsets[n+1]
//   | u32 out_targets[m]
// The in-CSR is rebuilt on load (cheaper than storing it).

#ifndef SIMPUSH_GRAPH_BINARY_IO_H_
#define SIMPUSH_GRAPH_BINARY_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Writes the graph in the SPG1 binary format.
Status SaveBinaryGraph(const Graph& graph, const std::string& path);

/// Loads a graph written by SaveBinaryGraph.
StatusOr<Graph> LoadBinaryGraph(const std::string& path);

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_BINARY_IO_H_
