#include "graph/degree_stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace simpush {

DegreeHistogram ComputeDegreeHistogram(const Graph& graph, DegreeKind kind) {
  // Flat sort + run-length encode: O(n) memory regardless of the max
  // degree (a dense per-degree tally would be O(max degree) — hundreds
  // of MB for a single web-scale hub) and no tree-map rebalancing per
  // node on graph load.
  std::vector<uint32_t> degrees(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    degrees[v] =
        kind == DegreeKind::kIn ? graph.InDegree(v) : graph.OutDegree(v);
  }
  std::sort(degrees.begin(), degrees.end());
  DegreeHistogram histogram;
  histogram.num_nodes = graph.num_nodes();
  for (size_t i = 0; i < degrees.size();) {
    size_t j = i + 1;
    while (j < degrees.size() && degrees[j] == degrees[i]) ++j;
    histogram.degrees.push_back(degrees[i]);
    histogram.counts.push_back(j - i);
    i = j;
  }
  return histogram;
}

std::vector<double> ComputeCcdf(const DegreeHistogram& histogram) {
  std::vector<double> ccdf(histogram.degrees.size());
  if (histogram.num_nodes == 0) return ccdf;
  // Suffix sums: P(D >= degrees[i]).
  uint64_t at_least = 0;
  for (size_t i = histogram.degrees.size(); i-- > 0;) {
    at_least += histogram.counts[i];
    ccdf[i] = static_cast<double>(at_least) /
              static_cast<double>(histogram.num_nodes);
  }
  return ccdf;
}

namespace {

// KS distance between the empirical tail CCDF and the fitted power-law
// CCDF (d / d_min)^{-(alpha-1)}, evaluated at the distinct tail degrees.
double TailKsDistance(const DegreeHistogram& histogram, size_t first_tail,
                      double alpha, uint64_t tail_nodes) {
  const double d_min = histogram.degrees[first_tail];
  double ks = 0.0;
  uint64_t seen = 0;  // tail nodes with degree < degrees[i]
  for (size_t i = first_tail; i < histogram.degrees.size(); ++i) {
    const double empirical_ccdf =
        static_cast<double>(tail_nodes - seen) / tail_nodes;
    const double model_ccdf =
        std::pow(histogram.degrees[i] / d_min, -(alpha - 1.0));
    ks = std::max(ks, std::fabs(empirical_ccdf - model_ccdf));
    seen += histogram.counts[i];
  }
  return ks;
}

}  // namespace

StatusOr<PowerLawFit> FitPowerLaw(const DegreeHistogram& histogram,
                                  uint64_t min_tail_nodes) {
  if (histogram.degrees.empty()) {
    return Status::InvalidArgument("empty degree histogram");
  }
  PowerLawFit best;
  bool found = false;
  // Suffix statistics for each candidate cutoff index.
  for (size_t cut = 0; cut < histogram.degrees.size(); ++cut) {
    const uint32_t d_min = histogram.degrees[cut];
    if (d_min == 0) continue;  // log undefined; degree-0 never in tail
    uint64_t tail_nodes = 0;
    double log_sum = 0.0;
    for (size_t i = cut; i < histogram.degrees.size(); ++i) {
      tail_nodes += histogram.counts[i];
      log_sum += histogram.counts[i] *
                 std::log(histogram.degrees[i] / (d_min - 0.5));
    }
    if (tail_nodes < min_tail_nodes) break;  // tails only shrink
    if (log_sum <= 0.0) continue;            // degenerate single-degree tail
    const double alpha = 1.0 + static_cast<double>(tail_nodes) / log_sum;
    const double ks = TailKsDistance(histogram, cut, alpha, tail_nodes);
    if (!found || ks < best.ks_distance) {
      best.alpha = alpha;
      best.d_min = d_min;
      best.ks_distance = ks;
      best.tail_nodes = tail_nodes;
      found = true;
    }
  }
  if (!found) {
    return Status::InvalidArgument("no cutoff with enough tail nodes");
  }
  return best;
}

double DegreeGini(const DegreeHistogram& histogram) {
  // Gini over the degree sequence: with degrees sorted ascending,
  // G = (2 * sum(i * d_i) / (n * sum(d_i))) - (n + 1) / n, with i 1-based.
  double total_degree = 0.0;
  double weighted = 0.0;
  uint64_t rank = 0;  // cumulative node count before this degree bucket
  for (size_t i = 0; i < histogram.degrees.size(); ++i) {
    const double d = histogram.degrees[i];
    const double cnt = static_cast<double>(histogram.counts[i]);
    // Sum of ranks (1-based) within the bucket: cnt terms starting at
    // rank+1, i.e. cnt*rank + cnt*(cnt+1)/2.
    weighted += d * (cnt * rank + cnt * (cnt + 1) / 2.0);
    total_degree += d * cnt;
    rank += histogram.counts[i];
  }
  const double n = static_cast<double>(histogram.num_nodes);
  if (n == 0 || total_degree == 0) return 0.0;
  return 2.0 * weighted / (n * total_degree) - (n + 1.0) / n;
}

}  // namespace simpush
