#include "graph/binary_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/graph_builder.h"

namespace simpush {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'G', '1'};
constexpr uint32_t kFlagSymmetric = 1u << 0;

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

template <typename T>
bool WriteRaw(FILE* f, const T* data, size_t count) {
  return std::fwrite(data, sizeof(T), count, f) == count;
}

template <typename T>
bool ReadRaw(FILE* f, T* data, size_t count) {
  return std::fread(data, sizeof(T), count, f) == count;
}

}  // namespace

Status SaveBinaryGraph(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");

  const uint32_t flags = graph.is_symmetric() ? kFlagSymmetric : 0;
  const uint32_t n = graph.num_nodes();
  const uint64_t m = graph.num_edges();
  if (!WriteRaw(f.get(), kMagic, 4) || !WriteRaw(f.get(), &flags, 1) ||
      !WriteRaw(f.get(), &n, 1) || !WriteRaw(f.get(), &m, 1)) {
    return Status::IOError("header write failed");
  }
  // Serialize the out-CSR via the public accessors (offsets derived).
  std::vector<uint64_t> offsets(size_t(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + graph.OutDegree(v);
  }
  if (!WriteRaw(f.get(), offsets.data(), offsets.size())) {
    return Status::IOError("offset write failed");
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto out = graph.OutNeighbors(v);
    if (!out.empty() && !WriteRaw(f.get(), out.data(), out.size())) {
      return Status::IOError("edge write failed");
    }
  }
  return Status::OK();
}

StatusOr<Graph> LoadBinaryGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open '" + path + "'");

  char magic[4];
  uint32_t flags = 0;
  uint32_t n = 0;
  uint64_t m = 0;
  if (!ReadRaw(f.get(), magic, 4) || !ReadRaw(f.get(), &flags, 1) ||
      !ReadRaw(f.get(), &n, 1) || !ReadRaw(f.get(), &m, 1)) {
    return Status::IOError("truncated header in '" + path + "'");
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError("'" + path + "' is not an SPG1 file");
  }
  std::vector<uint64_t> offsets(size_t(n) + 1);
  if (!ReadRaw(f.get(), offsets.data(), offsets.size())) {
    return Status::IOError("truncated offsets in '" + path + "'");
  }
  if (offsets[0] != 0 || offsets[n] != m) {
    return Status::IOError("corrupt offsets in '" + path + "'");
  }
  std::vector<NodeId> targets(m);
  if (m > 0 && !ReadRaw(f.get(), targets.data(), targets.size())) {
    return Status::IOError("truncated edges in '" + path + "'");
  }

  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1] || offsets[v + 1] > m) {
      return Status::IOError("corrupt offsets in '" + path + "'");
    }
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      builder.AddEdge(v, targets[e]);
    }
  }
  if ((flags & kFlagSymmetric) != 0) builder.MarkSymmetric();
  // The dump is already deduped; skip the dedupe pass on load.
  return std::move(builder).Build(/*dedupe=*/false);
}

}  // namespace simpush
