// Mutable adjacency-list graph supporting online edge insertion and
// deletion, with O(m) snapshotting into the immutable CSR Graph that the
// query algorithms consume.
//
// This is the substrate for the paper's motivating scenario (§1): the
// underlying graph "can change frequently and unpredictably", so query
// processing must not depend on precomputation that is invalidated by
// updates. Index-free methods (SimPush, ProbeSim, TopSim) query a fresh
// snapshot directly; index-based methods (SLING, PRSim, READS, TSF) must
// re-run Prepare() after updates. bench_dynamic_updates measures exactly
// this asymmetry.

#ifndef SIMPUSH_GRAPH_DYNAMIC_GRAPH_H_
#define SIMPUSH_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// A single edge update in a workload stream.
struct EdgeUpdate {
  enum class Kind : uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  NodeId src = 0;
  NodeId dst = 0;
};

/// Mutable directed graph with per-node out/in adjacency vectors.
///
/// Complexity: AddEdge amortized O(1); RemoveEdge O(d_O(src) + d_I(dst))
/// (swap-with-back removal, order not preserved); Snapshot O(n + m);
/// SnapshotDelta patches only the rows dirtied since the last
/// MarkClean() into a copy of a previous snapshot's arrays.
/// Duplicate (parallel) edges are permitted, matching multigraph edge
/// lists; HasEdge reports any occurrence.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Creates an empty graph with `num_nodes` nodes. The new graph is
  /// marked clean: its implicit base snapshot is the empty n-node graph.
  explicit DynamicGraph(NodeId num_nodes)
      : out_(num_nodes),
        in_(num_nodes),
        dirty_out_(num_nodes, 0),
        dirty_in_(num_nodes, 0),
        clean_nodes_(num_nodes) {}

  /// Copies an immutable snapshot into mutable form.
  static DynamicGraph FromGraph(const Graph& graph);

  NodeId num_nodes() const { return static_cast<NodeId>(out_.size()); }
  EdgeId num_edges() const { return num_edges_; }

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(out_[v].size());
  }
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(in_[v].size());
  }

  /// Out-neighbors O(v), as a span so templated walk/push code compiles
  /// against Graph and DynamicGraph interchangeably (same return type as
  /// Graph::OutNeighbors; no copies). Invalidated by any mutation of v's
  /// adjacency.
  std::span<const NodeId> OutNeighbors(NodeId v) const { return out_[v]; }
  /// In-neighbors I(v); same contract as OutNeighbors.
  std::span<const NodeId> InNeighbors(NodeId v) const { return in_[v]; }

  /// k-th in-neighbor of v, 0 <= k < InDegree(v) — mirrors
  /// Graph::InNeighborAt for walk code written against either type.
  NodeId InNeighborAt(NodeId v, uint32_t k) const { return in_[v][k]; }

  /// Appends a node with no edges; returns its id.
  NodeId AddNode();

  /// Inserts the directed edge src -> dst. InvalidArgument when an
  /// endpoint is out of range.
  Status AddEdge(NodeId src, NodeId dst);

  /// Removes one occurrence of src -> dst. NotFound when absent.
  Status RemoveEdge(NodeId src, NodeId dst);

  /// True when at least one src -> dst edge exists. O(d_O(src)).
  bool HasEdge(NodeId src, NodeId dst) const;

  /// Applies a batch of updates ATOMICALLY: the whole batch is
  /// validated against the live adjacency first — including intra-batch
  /// effects, so an insert earlier in the batch can satisfy a later
  /// delete of the same edge — and only then applied. On failure the
  /// graph is left byte-identical to before the call (no update is
  /// applied, no dirty state is recorded) and the status names the
  /// offending update's index. This is what lets the serving layer
  /// reject a bad network batch with a 4xx without the next hot swap
  /// silently publishing half of it.
  Status Apply(const std::vector<EdgeUpdate>& updates);

  /// Materializes an immutable CSR snapshot for querying. Adjacency is
  /// emitted canonically sorted (ascending per node, both directions):
  /// two DynamicGraphs holding the same edge multiset produce
  /// byte-identical snapshots regardless of the insert/delete history
  /// that built them — RemoveEdge's swap-with-back reordering never
  /// leaks into a snapshot. Registry hot swaps depend on this for
  /// reproducibility.
  StatusOr<Graph> Snapshot() const;

  /// Incremental canonical snapshot: produces a Graph byte-identical to
  /// Snapshot(), but built by patching only the dirty rows into a copy
  /// of `base`'s CSR arrays — clean per-node runs are bulk-copied
  /// (memcpy-speed, no per-row sort/validate/scatter), dirty rows are
  /// re-sorted locally. `base` must be the canonical snapshot of this
  /// graph's state at the last MarkClean() point (checked cheaply via
  /// the node/edge counts recorded then; FailedPrecondition on
  /// mismatch, letting callers fall back to a full Snapshot()).
  /// Cost: O(n) offset arithmetic + bandwidth-bound copy of clean runs
  /// + O(d log d) per dirty row, vs Snapshot()'s per-row copy+sort plus
  /// FromSortedCsr's O(m) validation and counting-sort scatter.
  StatusOr<Graph> SnapshotDelta(const Graph& base) const;

  /// Declares the current state clean: a snapshot taken now becomes the
  /// valid `base` for future SnapshotDelta calls, and the dirty set
  /// resets. The registry calls this after (and only after) a
  /// successful publish, so a failed publish keeps the dirty set intact
  /// and the next rebuild still patches against the live generation.
  void MarkClean();

  /// Distinct vertices whose out- or in-adjacency changed since the
  /// last MarkClean() (or construction). O(1); mirrored into /v1/stats.
  size_t dirty_vertices() const { return dirty_count_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  // Batch-wide validation for Apply: simulates the batch against the
  // live edge multiset without mutating anything.
  Status ValidateBatch(const std::vector<EdgeUpdate>& updates) const;
  // Occurrences of src->dst in the live out-adjacency. O(d_O(src)).
  EdgeId CountEdges(NodeId src, NodeId dst) const;
  void MarkOutDirty(NodeId v);
  void MarkInDirty(NodeId v);

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  EdgeId num_edges_ = 0;

  // Dirty tracking for SnapshotDelta: one flag per adjacency direction
  // (an edge dirties only its src's out-row and its dst's in-row), plus
  // the node/edge counts recorded at the last MarkClean() so a
  // mismatched base is rejected instead of silently miscopied.
  std::vector<uint8_t> dirty_out_;
  std::vector<uint8_t> dirty_in_;
  size_t dirty_count_ = 0;
  NodeId clean_nodes_ = 0;
  EdgeId clean_edges_ = 0;
};

/// Deterministically generates a mixed insert/delete stream against
/// `graph`: `num_updates` updates, a `delete_fraction` of which remove a
/// currently-present edge (sampled uniformly) while the rest insert a
/// fresh random non-self-loop edge. Mirrors the sliding-window update
/// workloads used by the dynamic-SimRank literature (READS, TSF).
/// With a single node no non-self-loop insert exists, so the stream
/// only deletes already-present edges and may end short of
/// `num_updates` once none remain.
std::vector<EdgeUpdate> GenerateUpdateStream(const Graph& graph,
                                             size_t num_updates,
                                             double delete_fraction,
                                             uint64_t seed);

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_DYNAMIC_GRAPH_H_
