// Mutable adjacency-list graph supporting online edge insertion and
// deletion, with O(m) snapshotting into the immutable CSR Graph that the
// query algorithms consume.
//
// This is the substrate for the paper's motivating scenario (§1): the
// underlying graph "can change frequently and unpredictably", so query
// processing must not depend on precomputation that is invalidated by
// updates. Index-free methods (SimPush, ProbeSim, TopSim) query a fresh
// snapshot directly; index-based methods (SLING, PRSim, READS, TSF) must
// re-run Prepare() after updates. bench_dynamic_updates measures exactly
// this asymmetry.

#ifndef SIMPUSH_GRAPH_DYNAMIC_GRAPH_H_
#define SIMPUSH_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// A single edge update in a workload stream.
struct EdgeUpdate {
  enum class Kind : uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  NodeId src = 0;
  NodeId dst = 0;
};

/// Mutable directed graph with per-node out/in adjacency vectors.
///
/// Complexity: AddEdge amortized O(1); RemoveEdge O(d_O(src) + d_I(dst))
/// (swap-with-back removal, order not preserved); Snapshot O(n + m).
/// Duplicate (parallel) edges are permitted, matching multigraph edge
/// lists; HasEdge reports any occurrence.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Creates an empty graph with `num_nodes` nodes.
  explicit DynamicGraph(NodeId num_nodes)
      : out_(num_nodes), in_(num_nodes) {}

  /// Copies an immutable snapshot into mutable form.
  static DynamicGraph FromGraph(const Graph& graph);

  NodeId num_nodes() const { return static_cast<NodeId>(out_.size()); }
  EdgeId num_edges() const { return num_edges_; }

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(out_[v].size());
  }
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(in_[v].size());
  }

  /// Out-neighbors O(v), as a span so templated walk/push code compiles
  /// against Graph and DynamicGraph interchangeably (same return type as
  /// Graph::OutNeighbors; no copies). Invalidated by any mutation of v's
  /// adjacency.
  std::span<const NodeId> OutNeighbors(NodeId v) const { return out_[v]; }
  /// In-neighbors I(v); same contract as OutNeighbors.
  std::span<const NodeId> InNeighbors(NodeId v) const { return in_[v]; }

  /// k-th in-neighbor of v, 0 <= k < InDegree(v) — mirrors
  /// Graph::InNeighborAt for walk code written against either type.
  NodeId InNeighborAt(NodeId v, uint32_t k) const { return in_[v][k]; }

  /// Appends a node with no edges; returns its id.
  NodeId AddNode();

  /// Inserts the directed edge src -> dst. InvalidArgument when an
  /// endpoint is out of range.
  Status AddEdge(NodeId src, NodeId dst);

  /// Removes one occurrence of src -> dst. NotFound when absent.
  Status RemoveEdge(NodeId src, NodeId dst);

  /// True when at least one src -> dst edge exists. O(d_O(src)).
  bool HasEdge(NodeId src, NodeId dst) const;

  /// Applies a batch of updates in order. Fails on the first invalid
  /// update, leaving earlier updates applied (streams are append-only in
  /// practice, so partial application matches replay semantics).
  Status Apply(const std::vector<EdgeUpdate>& updates);

  /// Materializes an immutable CSR snapshot for querying. Adjacency is
  /// emitted canonically sorted (ascending per node, both directions):
  /// two DynamicGraphs holding the same edge multiset produce
  /// byte-identical snapshots regardless of the insert/delete history
  /// that built them — RemoveEdge's swap-with-back reordering never
  /// leaks into a snapshot. Registry hot swaps depend on this for
  /// reproducibility.
  StatusOr<Graph> Snapshot() const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  EdgeId num_edges_ = 0;
};

/// Deterministically generates a mixed insert/delete stream against
/// `graph`: `num_updates` updates, a `delete_fraction` of which remove a
/// currently-present edge (sampled uniformly) while the rest insert a
/// fresh random non-self-loop edge. Mirrors the sliding-window update
/// workloads used by the dynamic-SimRank literature (READS, TSF).
std::vector<EdgeUpdate> GenerateUpdateStream(const Graph& graph,
                                             size_t num_updates,
                                             double delete_fraction,
                                             uint64_t seed);

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_DYNAMIC_GRAPH_H_
