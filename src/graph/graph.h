// Immutable directed graph in compressed sparse row (CSR) form with both
// out-adjacency and in-adjacency, as required by SimRank algorithms
// (forward pushes walk out-edges, Source-Push and √c-walks walk in-edges).

#ifndef SIMPUSH_GRAPH_GRAPH_H_
#define SIMPUSH_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace simpush {

/// Node identifier. Dense in [0, n).
using NodeId = uint32_t;
/// Edge index into the CSR arrays.
using EdgeId = uint64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Immutable CSR graph. Construct via GraphBuilder or the loaders in
/// graph_io.h; the class itself only offers O(1) adjacency access.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes n.
  NodeId num_nodes() const { return num_nodes_; }
  /// Number of directed edges m.
  EdgeId num_edges() const { return out_targets_.size(); }

  /// Out-neighbors O(v): nodes w with edge v->w.
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }
  /// In-neighbors I(v): nodes w with edge w->v.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Out-degree d_O(v).
  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  /// In-degree d_I(v).
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// k-th in-neighbor of v, 0 <= k < InDegree(v). Used by the walk engine
  /// to draw a uniform in-neighbor without materializing the span.
  NodeId InNeighborAt(NodeId v, uint32_t k) const {
    return in_sources_[in_offsets_[v] + k];
  }

  /// First in-CSR index of v's row: v's in-edges occupy
  /// [InRowBegin(v), InRowBegin(v) + InDegree(v)). Exposed so samplers
  /// can keep per-in-edge state flattened parallel to the CSR. Valid
  /// for v in [0, n]: InRowBegin(n) == m, so clean-run lengths can be
  /// computed as InRowBegin(w) - InRowBegin(v).
  EdgeId InRowBegin(NodeId v) const { return in_offsets_[v]; }

  /// Out-CSR analogue of InRowBegin, same [0, n] domain. Used by
  /// DynamicGraph::SnapshotDelta to bulk-copy runs of untouched rows
  /// straight out of a previous generation's arrays.
  EdgeId OutRowBegin(NodeId v) const { return out_offsets_[v]; }

  /// In-CSR entry at flat index e (the source of in-edge e).
  NodeId InSourceAt(EdgeId e) const { return in_sources_[e]; }

  /// Prefetch hints for the batched walk kernel: issue the loads for
  /// many walks' next steps before consuming any of them so the cache
  /// misses overlap instead of serializing. No-ops on compilers without
  /// __builtin_prefetch.
  void PrefetchInOffsets(NodeId v) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&in_offsets_[v], /*rw=*/0, /*locality=*/1);
#endif
  }
  void PrefetchInSource(EdgeId e) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&in_sources_[e], /*rw=*/0, /*locality=*/1);
#endif
  }

  /// True when the graph was built from an undirected edge list (every
  /// edge has its reverse). Informational only.
  bool is_symmetric() const { return is_symmetric_; }

  /// Approximate heap footprint of the CSR arrays in bytes.
  size_t MemoryBytes() const;

  /// Validates CSR invariants (monotone offsets, targets in range,
  /// in/out edge counts equal). Used by tests and loaders.
  Status Validate() const;

  /// Basic degree statistics for reporting (Table 4 style).
  struct DegreeStats {
    double avg_out_degree = 0;
    uint32_t max_out_degree = 0;
    uint32_t max_in_degree = 0;
    NodeId num_sink_nodes = 0;    // out-degree 0
    NodeId num_source_nodes = 0;  // in-degree 0
  };
  DegreeStats ComputeDegreeStats() const;

  /// Builds a graph directly from an out-adjacency CSR whose per-node
  /// target runs are already sorted ascending (parallel edges adjacent).
  /// The in-CSR is derived by a counting sort that preserves source
  /// order, so both adjacency directions come out canonically sorted.
  /// Validates the CSR invariants and the per-node sortedness; this is
  /// the fast path for snapshot rebuilds (no global edge sort).
  static StatusOr<Graph> FromSortedCsr(NodeId num_nodes,
                                       std::vector<EdgeId> out_offsets,
                                       std::vector<NodeId> out_targets,
                                       bool symmetric = false);

  /// Builds a graph from BOTH adjacency directions at once, skipping
  /// the O(m) in-CSR counting sort and per-edge validation that
  /// FromSortedCsr pays. Only O(n) structural invariants are checked
  /// (array sizes, offset endpoints, monotonicity, equal edge counts);
  /// row contents — per-node sortedness, targets in range, and out/in
  /// consistency — are the caller's proof obligation. This is the
  /// delta-publish fast path: DynamicGraph::SnapshotDelta guarantees
  /// those properties by construction (clean rows are copied from an
  /// already-canonical base, dirty rows are re-sorted locally), and the
  /// randomized snapshot-delta property suite pins the result to be
  /// byte-identical to a full Snapshot().
  static StatusOr<Graph> FromSortedCsrPair(NodeId num_nodes,
                                           std::vector<EdgeId> out_offsets,
                                           std::vector<NodeId> out_targets,
                                           std::vector<EdgeId> in_offsets,
                                           std::vector<NodeId> in_sources,
                                           bool symmetric = false);

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  bool is_symmetric_ = false;
  // Out-adjacency CSR.
  std::vector<EdgeId> out_offsets_;  // size n+1
  std::vector<NodeId> out_targets_;  // size m
  // In-adjacency CSR.
  std::vector<EdgeId> in_offsets_;  // size n+1
  std::vector<NodeId> in_sources_;  // size m
};

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_GRAPH_H_
