#include "graph/generators.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace simpush {

namespace {

// Packs an edge into one 64-bit key for dedupe sets.
inline uint64_t EdgeKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

StatusOr<Graph> GenerateErdosRenyi(NodeId num_nodes, EdgeId num_edges,
                                   uint64_t seed, bool undirected) {
  if (num_nodes < 2) {
    return Status::InvalidArgument("ErdosRenyi requires >= 2 nodes");
  }
  const uint64_t n = num_nodes;
  const uint64_t max_edges = n * (n - 1) / (undirected ? 2 : 1);
  if (num_edges > max_edges) {
    return Status::InvalidArgument("too many edges requested");
  }
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    if (a == b) continue;
    if (undirected && a > b) std::swap(a, b);
    if (!seen.insert(EdgeKey(a, b)).second) continue;
    if (undirected) {
      builder.AddUndirectedEdge(a, b);
    } else {
      builder.AddEdge(a, b);
    }
  }
  if (undirected) builder.MarkSymmetric();
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateBarabasiAlbert(NodeId num_nodes,
                                       uint32_t edges_per_node, uint64_t seed,
                                       bool undirected) {
  if (num_nodes < 2 || edges_per_node == 0) {
    return Status::InvalidArgument("BarabasiAlbert requires n>=2, k>=1");
  }
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  // Repeated-endpoint list implements preferential attachment: a node
  // appears once per incident edge, plus once unconditionally (the "+1"
  // smoothing that lets isolated nodes be picked).
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(static_cast<size_t>(num_nodes) *
                        (edges_per_node + 1));
  endpoint_pool.push_back(0);
  for (NodeId v = 1; v < num_nodes; ++v) {
    std::unordered_set<NodeId> picked;
    const uint32_t k = std::min<uint32_t>(edges_per_node, v);
    while (picked.size() < k) {
      const NodeId target =
          endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (target == v) continue;
      if (!picked.insert(target).second) continue;
      if (undirected) {
        builder.AddUndirectedEdge(v, target);
      } else {
        builder.AddEdge(v, target);
      }
      endpoint_pool.push_back(target);
    }
    endpoint_pool.push_back(v);
  }
  if (undirected) builder.MarkSymmetric();
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateChungLu(NodeId num_nodes, EdgeId num_edges,
                                double gamma, uint64_t seed,
                                bool undirected) {
  if (num_nodes < 2 || gamma <= 1.0) {
    return Status::InvalidArgument("ChungLu requires n>=2, gamma>1");
  }
  // Weights w_i = (i+1)^(-alpha) with alpha = 1/(gamma-1) yield a degree
  // distribution with power-law exponent gamma.
  const double alpha = 1.0 / (gamma - 1.0);
  std::vector<double> cdf(num_nodes);
  double total = 0.0;
  for (NodeId i = 0; i < num_nodes; ++i) {
    total += std::pow(static_cast<double>(i) + 1.0, -alpha);
    cdf[i] = total;
  }
  Rng rng(seed);
  auto sample_node = [&cdf, total, &rng]() -> NodeId {
    const double x = rng.NextDouble() * total;
    // Binary search the cumulative weights.
    auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
    return static_cast<NodeId>(it - cdf.begin());
  };

  GraphBuilder builder(num_nodes);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  // Rejection-sample distinct weighted endpoints until num_edges accepted.
  // Bail out if the graph saturates (tiny n with huge m in tests).
  uint64_t attempts = 0;
  const uint64_t max_attempts = 100ULL * num_edges + 1000000ULL;
  while (seen.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId a = sample_node();
    NodeId b = sample_node();
    if (a == b) continue;
    if (undirected && a > b) std::swap(a, b);
    if (!seen.insert(EdgeKey(a, b)).second) continue;
    if (undirected) {
      builder.AddUndirectedEdge(a, b);
    } else {
      builder.AddEdge(a, b);
    }
  }
  if (seen.empty()) return Status::Internal("ChungLu produced no edges");
  if (undirected) builder.MarkSymmetric();
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateCycle(NodeId num_nodes) {
  if (num_nodes < 2) return Status::InvalidArgument("cycle requires n>=2");
  GraphBuilder builder(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    builder.AddEdge(v, (v + 1) % num_nodes);
  }
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateStar(NodeId num_nodes, bool bidirectional) {
  if (num_nodes < 2) return Status::InvalidArgument("star requires n>=2");
  GraphBuilder builder(num_nodes);
  for (NodeId v = 1; v < num_nodes; ++v) {
    builder.AddEdge(v, 0);
    if (bidirectional) builder.AddEdge(0, v);
  }
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateComplete(NodeId num_nodes) {
  if (num_nodes < 2) return Status::InvalidArgument("complete requires n>=2");
  GraphBuilder builder(num_nodes);
  for (NodeId a = 0; a < num_nodes; ++a) {
    for (NodeId b = 0; b < num_nodes; ++b) {
      if (a != b) builder.AddEdge(a, b);
    }
  }
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateGrid(NodeId rows, NodeId cols) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("grid requires rows, cols >= 1");
  }
  const uint64_t n64 = static_cast<uint64_t>(rows) * cols;
  if (n64 > static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("grid too large");
  }
  GraphBuilder builder(static_cast<NodeId>(n64));
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateRMat(uint32_t scale, EdgeId num_edges, uint64_t seed,
                             double a, double b, double c, bool undirected) {
  if (scale == 0 || scale > 30) {
    return Status::InvalidArgument("RMat requires 1 <= scale <= 30");
  }
  if (a <= 0 || b <= 0 || c <= 0 || a + b + c >= 1.0) {
    return Status::InvalidArgument(
        "RMat quadrant probabilities must be positive with a+b+c < 1");
  }
  const NodeId n = static_cast<NodeId>(1u << scale);
  const uint64_t max_edges =
      static_cast<uint64_t>(n) * (n - 1) / (undirected ? 2 : 1);
  if (num_edges > max_edges) {
    return Status::InvalidArgument("too many edges requested");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  uint64_t attempts = 0;
  const uint64_t max_attempts = 100ULL * num_edges + 1000000ULL;
  while (seen.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId src = 0;
    NodeId dst = 0;
    for (uint32_t level = 0; level < scale; ++level) {
      // Independently noise-perturbed quadrants (±10%, SSCA#2 style)
      // avoid the exact self-similarity artifacts of vanilla R-MAT.
      const double pa = a * (0.9 + 0.2 * rng.NextDouble());
      const double pb = b * (0.9 + 0.2 * rng.NextDouble());
      const double pc = c * (0.9 + 0.2 * rng.NextDouble());
      const double pd = (1.0 - a - b - c) * (0.9 + 0.2 * rng.NextDouble());
      const double x = rng.NextDouble() * (pa + pb + pc + pd);
      src <<= 1;
      dst <<= 1;
      if (x < pa) {
        // top-left: no bits set
      } else if (x < pa + pb) {
        dst |= 1;
      } else if (x < pa + pb + pc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src == dst) continue;
    NodeId u = src, v = dst;
    if (undirected && u > v) std::swap(u, v);
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    if (undirected) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  if (seen.empty()) return Status::Internal("RMat produced no edges");
  if (undirected) builder.MarkSymmetric();
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateWattsStrogatz(NodeId num_nodes, uint32_t k,
                                      double beta, uint64_t seed) {
  if (num_nodes < 4 || k < 2 || k % 2 != 0 || k >= num_nodes) {
    return Status::InvalidArgument(
        "WattsStrogatz requires n >= 4 and even 2 <= k < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  Rng rng(seed);
  // Undirected edge set as canonical (min, max) pairs.
  std::unordered_set<uint64_t> edges;
  auto canonical = [](NodeId x, NodeId y) {
    return x < y ? EdgeKey(x, y) : EdgeKey(y, x);
  };
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      edges.insert(canonical(v, (v + j) % num_nodes));
    }
  }
  // Rewire: each lattice edge (v, v+j) keeps v and redraws the far
  // endpoint with probability beta.
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      if (rng.NextDouble() >= beta) continue;
      const NodeId old_to = (v + j) % num_nodes;
      const uint64_t old_key = canonical(v, old_to);
      if (edges.find(old_key) == edges.end()) continue;
      // Try a few times to find a fresh endpoint; skip on saturation.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const NodeId fresh = static_cast<NodeId>(rng.NextBounded(num_nodes));
        if (fresh == v) continue;
        const uint64_t fresh_key = canonical(v, fresh);
        if (edges.find(fresh_key) != edges.end()) continue;
        edges.erase(old_key);
        edges.insert(fresh_key);
        break;
      }
    }
  }
  GraphBuilder builder(num_nodes);
  for (uint64_t key : edges) {
    const NodeId x = static_cast<NodeId>(key >> 32);
    const NodeId y = static_cast<NodeId>(key & 0xFFFFFFFFu);
    builder.AddUndirectedEdge(x, y);
  }
  builder.MarkSymmetric();
  return std::move(builder).Build();
}

StatusOr<Graph> GenerateStochasticBlockModel(NodeId num_nodes,
                                             uint32_t num_blocks, double p_in,
                                             double p_out, uint64_t seed) {
  if (num_nodes < 2 || num_blocks == 0 || num_blocks > num_nodes) {
    return Status::InvalidArgument("SBM requires n >= 2, 1 <= blocks <= n");
  }
  if (p_in < 0 || p_in > 1 || p_out < 0 || p_out > 1) {
    return Status::InvalidArgument("SBM probabilities must be in [0, 1]");
  }
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  const NodeId block_size = (num_nodes + num_blocks - 1) / num_blocks;
  auto block_of = [block_size](NodeId v) { return v / block_size; };
  // Geometric skipping makes generation O(edges) rather than O(n^2) for
  // sparse p: after each hit, skip Geometric(p) candidate slots.
  auto sample_row = [&](NodeId src, NodeId lo, NodeId hi, double p) {
    if (p <= 0.0) return;
    if (p >= 1.0) {
      for (NodeId dst = lo; dst < hi; ++dst) {
        if (dst != src) builder.AddEdge(src, dst);
      }
      return;
    }
    // Skip-ahead sampling: the gap to the next Bernoulli(p) success is
    // Geometric, i.e. floor(log(1-r)/log(1-p)).
    const double log1mp = std::log1p(-p);
    uint64_t dst = lo;
    for (;;) {
      const double r = rng.NextDouble();
      dst += static_cast<uint64_t>(std::log1p(-r) / log1mp);
      if (dst >= hi) break;
      if (dst != src) builder.AddEdge(src, static_cast<NodeId>(dst));
      ++dst;
    }
  };
  for (NodeId src = 0; src < num_nodes; ++src) {
    const NodeId b = block_of(src);
    const NodeId in_lo = b * block_size;
    const NodeId in_hi = std::min<NodeId>(num_nodes, in_lo + block_size);
    sample_row(src, in_lo, in_hi, p_in);
    if (in_lo > 0) sample_row(src, 0, in_lo, p_out);
    if (in_hi < num_nodes) sample_row(src, in_hi, num_nodes, p_out);
  }
  return std::move(builder).Build();
}

}  // namespace simpush
