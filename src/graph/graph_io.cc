#include "graph/graph_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "graph/binary_io.h"
#include "graph/graph_builder.h"

namespace simpush {

namespace {

struct RawEdges {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
};

Status ParseInto(std::istream& in, const EdgeListOptions& options,
                 RawEdges* out) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blank and comment lines.
    size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (options.comment_chars.find(line[pos]) != std::string::npos) continue;
    std::istringstream ls(line);
    uint64_t a = 0;
    uint64_t b = 0;
    if (!(ls >> a >> b)) {
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    out->edges.emplace_back(a, b);
  }
  return Status::OK();
}

StatusOr<Graph> BuildFromRaw(const RawEdges& raw,
                             const EdgeListOptions& options) {
  // Compact arbitrary ids to [0, n) in first-appearance order.
  std::unordered_map<uint64_t, NodeId> remap;
  remap.reserve(raw.edges.size() * 2);
  auto intern = [&remap](uint64_t id) {
    auto [it, inserted] = remap.emplace(id, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(raw.edges.size());
  for (const auto& [a, b] : raw.edges) {
    // Two statements: emplace_back(intern(a), intern(b)) would leave
    // the interning order — and thus the documented first-appearance
    // id assignment — to unspecified argument evaluation order.
    const NodeId src = intern(a);
    const NodeId dst = intern(b);
    edges.emplace_back(src, dst);
  }
  GraphBuilder builder(static_cast<NodeId>(remap.size()));
  for (const auto& [a, b] : edges) {
    if (options.undirected) {
      builder.AddUndirectedEdge(a, b);
    } else {
      builder.AddEdge(a, b);
    }
  }
  if (options.undirected) builder.MarkSymmetric();
  return std::move(builder).Build(options.dedupe, options.drop_self_loops);
}

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path,
                             const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  RawEdges raw;
  SIMPUSH_RETURN_NOT_OK(ParseInto(in, options, &raw));
  return BuildFromRaw(raw, options);
}

StatusOr<Graph> ParseEdgeList(const std::string& text,
                              const EdgeListOptions& options) {
  std::istringstream in(text);
  RawEdges raw;
  SIMPUSH_RETURN_NOT_OK(ParseInto(in, options, &raw));
  return BuildFromRaw(raw, options);
}

StatusOr<Graph> LoadGraphAnyFormat(const std::string& path,
                                   const EdgeListOptions& options) {
  // Chaos hook: lets the suite fail a graph load without corrupting a
  // real file (covers every serve-layer path that loads from disk).
  SIMPUSH_FAILPOINT("graph_io.load");
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".spg") == 0) {
    return LoadBinaryGraph(path);
  }
  return LoadEdgeList(path, options);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      out << v << ' ' << w << '\n';
    }
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace simpush
