#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace simpush {

StatusOr<Graph> GraphBuilder::Build(bool dedupe, bool drop_self_loops) && {
  for (const auto& [src, dst] : edges_) {
    if (src >= num_nodes_ || dst >= num_nodes_) {
      return Status::InvalidArgument(
          "edge endpoint out of range: " + std::to_string(src) + "->" +
          std::to_string(dst) + " with n=" + std::to_string(num_nodes_));
    }
  }
  if (drop_self_loops) {
    std::erase_if(edges_, [](const auto& e) { return e.first == e.second; });
  }
  std::sort(edges_.begin(), edges_.end());
  if (dedupe) {
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.is_symmetric_ = symmetric_;
  const size_t m = edges_.size();

  // Out-CSR: edges_ is sorted by (src, dst) already.
  g.out_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  g.out_targets_.resize(m);
  for (const auto& [src, dst] : edges_) {
    (void)dst;
    ++g.out_offsets_[src + 1];
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  {
    std::vector<EdgeId> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (const auto& [src, dst] : edges_) {
      g.out_targets_[cursor[src]++] = dst;
    }
  }

  // In-CSR via counting sort on dst.
  g.in_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  g.in_sources_.resize(m);
  for (const auto& [src, dst] : edges_) {
    (void)src;
    ++g.in_offsets_[dst + 1];
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  {
    std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const auto& [src, dst] : edges_) {
      g.in_sources_[cursor[dst]++] = src;
    }
  }

  SIMPUSH_RETURN_NOT_OK(g.Validate());
  return g;
}

}  // namespace simpush
