// Edge-list text I/O (the format used by SNAP / LAW dataset dumps).

#ifndef SIMPUSH_GRAPH_GRAPH_IO_H_
#define SIMPUSH_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Options controlling edge-list parsing.
struct EdgeListOptions {
  /// Treat each line "a b" as an undirected edge (adds both directions),
  /// matching the paper's handling of undirected datasets (§2.1).
  bool undirected = false;
  /// Lines starting with any of these characters are skipped.
  std::string comment_chars = "#%";
  /// Remove duplicate edges after parsing.
  bool dedupe = true;
  /// Drop self-loops (u, u).
  bool drop_self_loops = false;
};

/// Loads a graph from a whitespace-separated edge-list file. Node ids may
/// be arbitrary non-negative integers; they are compacted to [0, n) in
/// first-appearance order.
StatusOr<Graph> LoadEdgeList(const std::string& path,
                             const EdgeListOptions& options = {});

/// Parses an edge list from an in-memory string (same rules as
/// LoadEdgeList); used heavily by tests.
StatusOr<Graph> ParseEdgeList(const std::string& text,
                              const EdgeListOptions& options = {});

/// Loads a graph dispatching on the file name: ".spg" files go through
/// LoadBinaryGraph, anything else through LoadEdgeList with `options`.
/// The single format-detection point shared by the CLI tools and the
/// serving layer's graph-create endpoint.
StatusOr<Graph> LoadGraphAnyFormat(const std::string& path,
                                   const EdgeListOptions& options = {});

/// Writes the graph as a directed edge list ("src dst" per line).
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_GRAPH_IO_H_
