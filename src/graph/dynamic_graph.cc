#include "graph/dynamic_graph.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>

#include "common/rng.h"

namespace simpush {

namespace {

// Removes one occurrence of `value` from `vec` by swapping with the back.
// Returns false when absent.
bool SwapRemove(std::vector<NodeId>& vec, NodeId value) {
  auto it = std::find(vec.begin(), vec.end(), value);
  if (it == vec.end()) return false;
  *it = vec.back();
  vec.pop_back();
  return true;
}

// (src, dst) packed into one word for the batch-validation map.
uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

}  // namespace

DynamicGraph DynamicGraph::FromGraph(const Graph& graph) {
  DynamicGraph dynamic(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto out = graph.OutNeighbors(v);
    dynamic.out_[v].assign(out.begin(), out.end());
    auto in = graph.InNeighbors(v);
    dynamic.in_[v].assign(in.begin(), in.end());
  }
  dynamic.num_edges_ = graph.num_edges();
  // Clean relative to `graph`: when it is a canonical snapshot (the
  // registry's case), SnapshotDelta can immediately patch against it.
  dynamic.MarkClean();
  return dynamic;
}

void DynamicGraph::MarkOutDirty(NodeId v) {
  if (dirty_out_[v] == 0) {
    if (dirty_in_[v] == 0) ++dirty_count_;
    dirty_out_[v] = 1;
  }
}

void DynamicGraph::MarkInDirty(NodeId v) {
  if (dirty_in_[v] == 0) {
    if (dirty_out_[v] == 0) ++dirty_count_;
    dirty_in_[v] = 1;
  }
}

NodeId DynamicGraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  // A node appended past the clean point has no base row to copy; it is
  // dirty in both directions until the next MarkClean().
  dirty_out_.push_back(1);
  dirty_in_.push_back(1);
  ++dirty_count_;
  return static_cast<NodeId>(out_.size() - 1);
}

Status DynamicGraph::AddEdge(NodeId src, NodeId dst) {
  if (src >= num_nodes() || dst >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  out_[src].push_back(dst);
  in_[dst].push_back(src);
  ++num_edges_;
  MarkOutDirty(src);
  MarkInDirty(dst);
  return Status::OK();
}

Status DynamicGraph::RemoveEdge(NodeId src, NodeId dst) {
  if (src >= num_nodes() || dst >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (!SwapRemove(out_[src], dst)) {
    return Status::NotFound("edge not present");
  }
  // The in-list must hold a matching entry; CSR invariants guarantee it.
  SwapRemove(in_[dst], src);
  --num_edges_;
  MarkOutDirty(src);
  MarkInDirty(dst);
  return Status::OK();
}

bool DynamicGraph::HasEdge(NodeId src, NodeId dst) const {
  if (src >= num_nodes()) return false;
  const auto& neighbors = out_[src];
  return std::find(neighbors.begin(), neighbors.end(), dst) !=
         neighbors.end();
}

EdgeId DynamicGraph::CountEdges(NodeId src, NodeId dst) const {
  return static_cast<EdgeId>(
      std::count(out_[src].begin(), out_[src].end(), dst));
}

Status DynamicGraph::ValidateBatch(
    const std::vector<EdgeUpdate>& updates) const {
  // Simulate the batch against the live edge multiset: per (src, dst)
  // key, track how many copies would be available at each step. The
  // live count is loaded lazily on first touch, so validation costs
  // O(sum of touched out-degrees), not O(m).
  std::unordered_map<uint64_t, EdgeId> available;
  available.reserve(updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& update = updates[i];
    Status status = Status::OK();
    if (update.src >= num_nodes() || update.dst >= num_nodes()) {
      status = Status::InvalidArgument("edge endpoint out of range");
    } else {
      auto [it, first_touch] =
          available.try_emplace(EdgeKey(update.src, update.dst), 0);
      if (first_touch) it->second = CountEdges(update.src, update.dst);
      if (update.kind == EdgeUpdate::Kind::kInsert) {
        ++it->second;
      } else if (it->second == 0) {
        status = Status::NotFound("edge not present");
      } else {
        --it->second;
      }
    }
    if (!status.ok()) {
      return Status(status.code(), "update " + std::to_string(i) +
                                       " rejected (no updates applied): " +
                                       std::string(status.message()));
    }
  }
  return Status::OK();
}

Status DynamicGraph::Apply(const std::vector<EdgeUpdate>& updates) {
  // Validate-then-mutate: a rejected batch must leave the graph (and
  // its dirty tracking) byte-identical to before the call, so the
  // serving layer can 4xx a bad batch without the next hot swap
  // publishing a half-applied prefix.
  SIMPUSH_RETURN_NOT_OK(ValidateBatch(updates));
  for (const EdgeUpdate& update : updates) {
    const Status status = update.kind == EdgeUpdate::Kind::kInsert
                              ? AddEdge(update.src, update.dst)
                              : RemoveEdge(update.src, update.dst);
    if (!status.ok()) {
      return Status::Internal("validated update failed to apply: " +
                              std::string(status.message()));
    }
  }
  return Status::OK();
}

StatusOr<Graph> DynamicGraph::Snapshot() const {
  // Canonical snapshot: RemoveEdge's swap-with-back removal makes the
  // live adjacency order a function of the whole update history, so the
  // CSR is built with every per-node run sorted — two graphs holding the
  // same edge multiset snapshot to byte-identical CSRs no matter which
  // insert/delete sequence produced them. That is what makes registry
  // hot swaps reproducible (and walk indices meaningful across swaps).
  // Parallel edges are kept: the dynamic stream may legitimately contain
  // duplicates and deleting one copy must leave the other.
  const NodeId n = num_nodes();
  std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + out_[v].size();
  }
  std::vector<NodeId> targets(static_cast<size_t>(num_edges_));
  for (NodeId v = 0; v < n; ++v) {
    const auto begin = targets.begin() + static_cast<ptrdiff_t>(offsets[v]);
    std::copy(out_[v].begin(), out_[v].end(), begin);
    std::sort(begin, targets.begin() + static_cast<ptrdiff_t>(offsets[v + 1]));
  }
  return Graph::FromSortedCsr(n, std::move(offsets), std::move(targets));
}

namespace {

// Builds one CSR side of a delta snapshot. Clean rows (not dirty and
// present in the base) are bulk-copied as maximal runs straight out of
// the base's flat array — their content is already canonical and their
// degrees are unchanged, so run lengths line up exactly. Dirty rows and
// rows past the base's node count are copied from the live adjacency
// and sorted locally, restoring the canonical order that swap-with-back
// deletions scrambled.
// `base_row_begin(v)` is the flat index of v's base row (valid for
// v in [0, base_n], so run lengths come from adjacent differences);
// `base_row_data(v)` is the pointer to its first element.
template <typename RowBeginFn, typename RowDataFn>
void BuildDeltaSide(NodeId n, NodeId base_n, EdgeId total_edges,
                    const std::vector<std::vector<NodeId>>& adj,
                    const std::vector<uint8_t>& dirty,
                    RowBeginFn base_row_begin, RowDataFn base_row_data,
                    std::vector<EdgeId>& offsets,
                    std::vector<NodeId>& flat) {
  offsets.resize(static_cast<size_t>(n) + 1);
  offsets[0] = 0;
  // Append into reserved capacity instead of resize-then-overwrite:
  // the flat array is written exactly once (no zero-fill pass), which
  // matters when the whole point is to be bandwidth-bound on ~m words.
  flat.clear();
  flat.reserve(total_edges);
  NodeId v = 0;
  while (v < n) {
    if (v < base_n && dirty[v] == 0) {
      NodeId w = v + 1;
      while (w < base_n && dirty[w] == 0) ++w;
      // Rows are contiguous in the base's flat array, so the whole
      // clean run [v, w) is one copy; its offsets are the base's,
      // shifted by however much the dirty rows before it grew/shrank.
      const NodeId* row = base_row_data(v);
      flat.insert(flat.end(), row, row + (base_row_begin(w) - base_row_begin(v)));
      const EdgeId shift = offsets[v] - base_row_begin(v);
      for (NodeId u = v; u < w; ++u) {
        offsets[u + 1] = base_row_begin(u + 1) + shift;
      }
      v = w;
    } else {
      flat.insert(flat.end(), adj[v].begin(), adj[v].end());
      std::sort(flat.end() - static_cast<ptrdiff_t>(adj[v].size()),
                flat.end());
      offsets[v + 1] = offsets[v] + adj[v].size();
      ++v;
    }
  }
}

}  // namespace

StatusOr<Graph> DynamicGraph::SnapshotDelta(const Graph& base) const {
  // Cheap base check: `base` must be the canonical snapshot of this
  // graph at the last MarkClean() point. Node/edge counts recorded then
  // catch every registry-level misuse (stale generation, wrong tenant's
  // graph after a resize); byte-level agreement of clean rows is the
  // documented contract, enforced end-to-end by the randomized
  // delta-vs-full property suite.
  if (base.num_nodes() != clean_nodes_ || base.num_edges() != clean_edges_) {
    return Status::FailedPrecondition(
        "delta base does not match the last marked-clean snapshot");
  }
  const NodeId n = num_nodes();
  const NodeId base_n = clean_nodes_;

  std::vector<EdgeId> out_offsets, in_offsets;
  std::vector<NodeId> out_targets, in_sources;
  // The base's rows are contiguous per direction, so OutRowBegin /
  // InRowBegin plus the first row's data pointer address the whole flat
  // array; clean-run copies never cross a dirty row's boundary.
  BuildDeltaSide(
      n, base_n, num_edges_, out_, dirty_out_,
      [&base](NodeId v) { return base.OutRowBegin(v); },
      [&base](NodeId v) { return base.OutNeighbors(v).data(); },
      out_offsets, out_targets);
  BuildDeltaSide(
      n, base_n, num_edges_, in_, dirty_in_,
      [&base](NodeId v) { return base.InRowBegin(v); },
      [&base](NodeId v) { return base.InNeighbors(v).data(); },
      in_offsets, in_sources);
  return Graph::FromSortedCsrPair(n, std::move(out_offsets),
                                  std::move(out_targets),
                                  std::move(in_offsets),
                                  std::move(in_sources));
}

void DynamicGraph::MarkClean() {
  std::fill(dirty_out_.begin(), dirty_out_.end(), 0);
  std::fill(dirty_in_.begin(), dirty_in_.end(), 0);
  dirty_count_ = 0;
  clean_nodes_ = num_nodes();
  clean_edges_ = num_edges_;
}

size_t DynamicGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& adj : out_) bytes += adj.capacity() * sizeof(NodeId);
  for (const auto& adj : in_) bytes += adj.capacity() * sizeof(NodeId);
  bytes += (out_.capacity() + in_.capacity()) * sizeof(std::vector<NodeId>);
  bytes += dirty_out_.capacity() + dirty_in_.capacity();
  return bytes;
}

std::vector<EdgeUpdate> GenerateUpdateStream(const Graph& graph,
                                             size_t num_updates,
                                             double delete_fraction,
                                             uint64_t seed) {
  std::vector<EdgeUpdate> updates;
  updates.reserve(num_updates);
  Rng rng(seed);
  const NodeId n = graph.num_nodes();
  if (n == 0) return updates;

  // Maintain a live multiset of edges so deletions always target a
  // currently-present edge even after earlier stream entries.
  std::vector<std::pair<NodeId, NodeId>> live;
  live.reserve(graph.num_edges() + num_updates);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : graph.OutNeighbors(v)) live.emplace_back(v, w);
  }

  // With a single node every insert would be a self-loop, so the stream
  // degenerates to deletions only (and ends short once none remain).
  const bool can_insert = n > 1;
  for (size_t i = 0; i < num_updates; ++i) {
    const bool do_delete =
        !live.empty() &&
        (!can_insert || rng.NextDouble() < delete_fraction);
    if (do_delete) {
      const size_t pick = rng.NextBounded(live.size());
      const auto [src, dst] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      updates.push_back({EdgeUpdate::Kind::kDelete, src, dst});
    } else if (!can_insert) {
      break;
    } else {
      NodeId src = static_cast<NodeId>(rng.NextBounded(n));
      NodeId dst = static_cast<NodeId>(rng.NextBounded(n));
      while (dst == src) dst = static_cast<NodeId>(rng.NextBounded(n));
      live.emplace_back(src, dst);
      updates.push_back({EdgeUpdate::Kind::kInsert, src, dst});
    }
  }
  return updates;
}

}  // namespace simpush
