#include "graph/dynamic_graph.h"

#include <algorithm>
#include <cstddef>

#include "common/rng.h"

namespace simpush {

namespace {

// Removes one occurrence of `value` from `vec` by swapping with the back.
// Returns false when absent.
bool SwapRemove(std::vector<NodeId>& vec, NodeId value) {
  auto it = std::find(vec.begin(), vec.end(), value);
  if (it == vec.end()) return false;
  *it = vec.back();
  vec.pop_back();
  return true;
}

}  // namespace

DynamicGraph DynamicGraph::FromGraph(const Graph& graph) {
  DynamicGraph dynamic(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto out = graph.OutNeighbors(v);
    dynamic.out_[v].assign(out.begin(), out.end());
    auto in = graph.InNeighbors(v);
    dynamic.in_[v].assign(in.begin(), in.end());
  }
  dynamic.num_edges_ = graph.num_edges();
  return dynamic;
}

NodeId DynamicGraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

Status DynamicGraph::AddEdge(NodeId src, NodeId dst) {
  if (src >= num_nodes() || dst >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  out_[src].push_back(dst);
  in_[dst].push_back(src);
  ++num_edges_;
  return Status::OK();
}

Status DynamicGraph::RemoveEdge(NodeId src, NodeId dst) {
  if (src >= num_nodes() || dst >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (!SwapRemove(out_[src], dst)) {
    return Status::NotFound("edge not present");
  }
  // The in-list must hold a matching entry; CSR invariants guarantee it.
  SwapRemove(in_[dst], src);
  --num_edges_;
  return Status::OK();
}

bool DynamicGraph::HasEdge(NodeId src, NodeId dst) const {
  if (src >= num_nodes()) return false;
  const auto& neighbors = out_[src];
  return std::find(neighbors.begin(), neighbors.end(), dst) !=
         neighbors.end();
}

Status DynamicGraph::Apply(const std::vector<EdgeUpdate>& updates) {
  for (const EdgeUpdate& update : updates) {
    Status status = update.kind == EdgeUpdate::Kind::kInsert
                        ? AddEdge(update.src, update.dst)
                        : RemoveEdge(update.src, update.dst);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

StatusOr<Graph> DynamicGraph::Snapshot() const {
  // Canonical snapshot: RemoveEdge's swap-with-back removal makes the
  // live adjacency order a function of the whole update history, so the
  // CSR is built with every per-node run sorted — two graphs holding the
  // same edge multiset snapshot to byte-identical CSRs no matter which
  // insert/delete sequence produced them. That is what makes registry
  // hot swaps reproducible (and walk indices meaningful across swaps).
  // Parallel edges are kept: the dynamic stream may legitimately contain
  // duplicates and deleting one copy must leave the other.
  const NodeId n = num_nodes();
  std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + out_[v].size();
  }
  std::vector<NodeId> targets(static_cast<size_t>(num_edges_));
  for (NodeId v = 0; v < n; ++v) {
    const auto begin = targets.begin() + static_cast<ptrdiff_t>(offsets[v]);
    std::copy(out_[v].begin(), out_[v].end(), begin);
    std::sort(begin, targets.begin() + static_cast<ptrdiff_t>(offsets[v + 1]));
  }
  return Graph::FromSortedCsr(n, std::move(offsets), std::move(targets));
}

size_t DynamicGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& adj : out_) bytes += adj.capacity() * sizeof(NodeId);
  for (const auto& adj : in_) bytes += adj.capacity() * sizeof(NodeId);
  bytes += (out_.capacity() + in_.capacity()) * sizeof(std::vector<NodeId>);
  return bytes;
}

std::vector<EdgeUpdate> GenerateUpdateStream(const Graph& graph,
                                             size_t num_updates,
                                             double delete_fraction,
                                             uint64_t seed) {
  std::vector<EdgeUpdate> updates;
  updates.reserve(num_updates);
  Rng rng(seed);
  const NodeId n = graph.num_nodes();
  if (n == 0) return updates;

  // Maintain a live multiset of edges so deletions always target a
  // currently-present edge even after earlier stream entries.
  std::vector<std::pair<NodeId, NodeId>> live;
  live.reserve(graph.num_edges() + num_updates);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : graph.OutNeighbors(v)) live.emplace_back(v, w);
  }

  for (size_t i = 0; i < num_updates; ++i) {
    const bool do_delete =
        !live.empty() && rng.NextDouble() < delete_fraction;
    if (do_delete) {
      const size_t pick = rng.NextBounded(live.size());
      const auto [src, dst] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      updates.push_back({EdgeUpdate::Kind::kDelete, src, dst});
    } else {
      NodeId src = static_cast<NodeId>(rng.NextBounded(n));
      NodeId dst = static_cast<NodeId>(rng.NextBounded(n));
      if (n > 1) {
        while (dst == src) dst = static_cast<NodeId>(rng.NextBounded(n));
      }
      live.emplace_back(src, dst);
      updates.push_back({EdgeUpdate::Kind::kInsert, src, dst});
    }
  }
  return updates;
}

}  // namespace simpush
