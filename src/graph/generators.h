// Deterministic synthetic graph generators used as stand-ins for the
// paper's web-scale datasets (see DESIGN.md §3) and by property tests.

#ifndef SIMPUSH_GRAPH_GENERATORS_H_
#define SIMPUSH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Erdős–Rényi G(n, m): `num_edges` directed edges drawn uniformly
/// (without duplicates, without self-loops).
StatusOr<Graph> GenerateErdosRenyi(NodeId num_nodes, EdgeId num_edges,
                                   uint64_t seed, bool undirected = false);

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` out-edges to existing nodes with probability
/// proportional to (in-degree + 1). Produces a power-law in-degree tail.
StatusOr<Graph> GenerateBarabasiAlbert(NodeId num_nodes,
                                       uint32_t edges_per_node, uint64_t seed,
                                       bool undirected = false);

/// Chung–Lu power-law: node weights w_i ∝ (i+1)^(-1/(gamma-1)); edge (i,j)
/// sampled with probability ∝ w_i·w_j until ~num_edges edges accepted.
/// gamma ≈ 2.1–3.0 matches web/social graphs; this is the primary
/// stand-in generator for the paper's datasets.
StatusOr<Graph> GenerateChungLu(NodeId num_nodes, EdgeId num_edges,
                                double gamma, uint64_t seed,
                                bool undirected = false);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0. Hand-analyzable SimRank.
StatusOr<Graph> GenerateCycle(NodeId num_nodes);

/// Star: spokes 1..n-1 each point to hub 0 (and hub to spokes when
/// `bidirectional`). SimRank between spokes is analytic: c.
StatusOr<Graph> GenerateStar(NodeId num_nodes, bool bidirectional = false);

/// Complete directed graph without self-loops; analytic SimRank.
StatusOr<Graph> GenerateComplete(NodeId num_nodes);

/// 2-D grid with edges pointing right and down; used in tests for a
/// sparse deterministic topology with varied in-degrees.
StatusOr<Graph> GenerateGrid(NodeId rows, NodeId cols);

/// R-MAT / Kronecker recursive-matrix generator (Chakrabarti et al.):
/// 2^scale nodes, `num_edges` directed edges placed by recursively
/// descending the adjacency matrix with quadrant probabilities
/// (a, b, c, 1-a-b-c). Default parameters (0.57, 0.19, 0.19) are the
/// Graph500 values and yield the skewed, locally dense structure of web
/// crawls — the character the paper highlights for Twitter/ClueWeb.
/// Self-loops are dropped; duplicate placements are retried.
StatusOr<Graph> GenerateRMat(uint32_t scale, EdgeId num_edges, uint64_t seed,
                             double a = 0.57, double b = 0.19,
                             double c = 0.19, bool undirected = false);

/// Watts–Strogatz small world: ring lattice of even degree k, each edge
/// rewired with probability beta. Undirected (symmetrized). Used to test
/// behaviour on high-clustering, non-power-law graphs — the regime where
/// PRSim's power-law assumption breaks but SimPush's guarantees hold.
StatusOr<Graph> GenerateWattsStrogatz(NodeId num_nodes, uint32_t k,
                                      double beta, uint64_t seed);

/// Stochastic block model: `num_blocks` equal-size communities; an edge
/// between nodes in the same block is sampled with probability p_in and
/// across blocks with p_out. Directed. SimRank's "similar nodes are
/// referenced by similar nodes" intuition makes within-block pairs score
/// high, which the recommendation example exploits.
StatusOr<Graph> GenerateStochasticBlockModel(NodeId num_nodes,
                                             uint32_t num_blocks, double p_in,
                                             double p_out, uint64_t seed);

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_GENERATORS_H_
