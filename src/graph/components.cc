#include "graph/components.h"

#include <algorithm>
#include <unordered_set>

namespace simpush {

ComponentInfo WeaklyConnectedComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  ComponentInfo info;
  info.component_of.assign(n, UINT32_MAX);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (info.component_of[root] != UINT32_MAX) continue;
    const uint32_t label = info.num_components++;
    info.sizes.push_back(0);
    stack.push_back(root);
    info.component_of[root] = label;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      ++info.sizes[label];
      for (NodeId w : graph.OutNeighbors(v)) {
        if (info.component_of[w] == UINT32_MAX) {
          info.component_of[w] = label;
          stack.push_back(w);
        }
      }
      for (NodeId w : graph.InNeighbors(v)) {
        if (info.component_of[w] == UINT32_MAX) {
          info.component_of[w] = label;
          stack.push_back(w);
        }
      }
    }
  }
  return info;
}

std::vector<NodeId> InReachableSet(const Graph& graph, NodeId source,
                                   uint32_t max_depth) {
  std::unordered_set<NodeId> seen{source};
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  uint32_t depth = 0;
  while (!frontier.empty() && (max_depth == 0 || depth < max_depth)) {
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId w : graph.InNeighbors(v)) {
        if (seen.insert(w).second) next.push_back(w);
      }
    }
    std::swap(frontier, next);
    ++depth;
  }
  std::vector<NodeId> result(seen.begin(), seen.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> PossiblySimilarCandidates(const Graph& graph, NodeId u,
                                              uint32_t max_depth) {
  // Walk region of u: nodes a √c-walk from u can visit within the
  // horizon. Any v whose region shares a node with u's can meet u.
  const std::vector<NodeId> u_region = InReachableSet(graph, u, max_depth);
  std::unordered_set<NodeId> in_u_region(u_region.begin(), u_region.end());

  // Reverse direction: nodes that can reach the region along in-edges
  // equals nodes whose own walk region intersects it. Walk forward over
  // out-edges from the region.
  std::unordered_set<NodeId> candidates(u_region.begin(), u_region.end());
  std::vector<NodeId> frontier = u_region;
  std::vector<NodeId> next;
  uint32_t depth = 0;
  while (!frontier.empty() && (max_depth == 0 || depth < max_depth)) {
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId w : graph.OutNeighbors(v)) {
        if (candidates.insert(w).second) next.push_back(w);
      }
    }
    std::swap(frontier, next);
    ++depth;
  }
  std::vector<NodeId> result(candidates.begin(), candidates.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace simpush
