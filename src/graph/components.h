// Connectivity utilities: weakly connected components and reverse
// reachability. SimRank is zero across weak components, so the CLI and
// examples use these to explain empty result sets, and tests use them
// to assert no cross-component score leakage.

#ifndef SIMPUSH_GRAPH_COMPONENTS_H_
#define SIMPUSH_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace simpush {

/// Weakly-connected-component labelling.
struct ComponentInfo {
  /// component_of[v] in [0, num_components); labels are ordered by the
  /// smallest node id contained in the component.
  std::vector<uint32_t> component_of;
  uint32_t num_components = 0;
  /// Size of each component, label-indexed.
  std::vector<NodeId> sizes;
};

/// Computes weakly connected components (treating edges as undirected)
/// with an iterative BFS. O(n + m).
ComponentInfo WeaklyConnectedComponents(const Graph& graph);

/// Nodes reachable from `source` by following in-edges (the region a
/// √c-walk from `source` can visit), up to `max_depth` steps
/// (max_depth = 0 means unbounded). Returns a sorted node list.
std::vector<NodeId> InReachableSet(const Graph& graph, NodeId source,
                                   uint32_t max_depth = 0);

/// Nodes v that can possibly have s(u, v) > 0: those whose in-reachable
/// region (walk region) intersects u's at matching depths is a superset
/// of this cheap test — we return nodes whose walk region intersects
/// u's at all, which is a sound overapproximation used for candidate
/// pruning.
std::vector<NodeId> PossiblySimilarCandidates(const Graph& graph, NodeId u,
                                              uint32_t max_depth);

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_COMPONENTS_H_
