// Degree-distribution analysis: histograms, CCDF, and a power-law tail
// fit (continuous-approximation MLE of Clauset–Shalizi–Newman with a KS
// goodness-of-fit distance).
//
// Motivation from the paper: PRSim's complexity analysis assumes the
// input is a strict power-law graph, and the paper counters with Broido
// & Clauset's "Scale-free networks are rare" [3]. This module makes the
// assumption checkable — the Table 4 dataset bench prints each
// stand-in's fitted exponent and KS distance, and tests verify that the
// Chung–Lu stand-ins actually have the tail they claim.

#ifndef SIMPUSH_GRAPH_DEGREE_STATS_H_
#define SIMPUSH_GRAPH_DEGREE_STATS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Which adjacency direction to analyze.
enum class DegreeKind { kIn, kOut };

/// degree -> count histogram, with zero-count degrees omitted.
struct DegreeHistogram {
  std::vector<uint32_t> degrees;  ///< Sorted ascending.
  std::vector<uint64_t> counts;   ///< counts[i] nodes have degrees[i].
  uint64_t num_nodes = 0;         ///< Total nodes (including degree 0).
};

/// Builds the in- or out-degree histogram of `graph`.
DegreeHistogram ComputeDegreeHistogram(const Graph& graph, DegreeKind kind);

/// Empirical complementary CDF P(D >= d) evaluated at each distinct
/// degree in the histogram.
std::vector<double> ComputeCcdf(const DegreeHistogram& histogram);

/// Result of a power-law tail fit P(d) ~ d^-alpha for d >= d_min.
struct PowerLawFit {
  double alpha = 0;        ///< Fitted exponent (typically 2-3 for web graphs).
  uint32_t d_min = 1;      ///< Tail cutoff used for the fit.
  double ks_distance = 1;  ///< Kolmogorov–Smirnov distance on the tail.
  uint64_t tail_nodes = 0; ///< Nodes with degree >= d_min.
};

/// Fits a power-law tail by the continuous-approximation MLE
///   alpha = 1 + n_tail / sum(ln(d_i / (d_min - 0.5))),
/// scanning d_min over the distinct degrees and keeping the fit with the
/// smallest KS distance (the CSN recipe). Requires at least
/// `min_tail_nodes` in the tail for a cutoff to be eligible.
/// InvalidArgument when no eligible cutoff exists.
StatusOr<PowerLawFit> FitPowerLaw(const DegreeHistogram& histogram,
                                  uint64_t min_tail_nodes = 50);

/// Gini coefficient of the degree sequence — a scale-free measure of
/// degree skew (0 = regular graph, -> 1 = single dominant hub). Used in
/// Table 4 reporting alongside the power-law fit.
double DegreeGini(const DegreeHistogram& histogram);

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_DEGREE_STATS_H_
