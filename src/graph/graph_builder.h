// Mutable edge-list accumulator that finalizes into an immutable CSR Graph.

#ifndef SIMPUSH_GRAPH_GRAPH_BUILDER_H_
#define SIMPUSH_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Accumulates directed edges and builds the dual-CSR Graph.
///
/// Usage:
///   GraphBuilder b(n);
///   b.AddEdge(u, v);             // directed u -> v
///   auto graph = std::move(b).Build();
class GraphBuilder {
 public:
  /// Creates a builder for a graph with exactly `num_nodes` nodes.
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Appends the directed edge src -> dst. Out-of-range endpoints are
  /// rejected at Build() time.
  void AddEdge(NodeId src, NodeId dst) { edges_.emplace_back(src, dst); }

  /// Appends both directions (for undirected input, §2.1 of the paper).
  void AddUndirectedEdge(NodeId a, NodeId b) {
    AddEdge(a, b);
    AddEdge(b, a);
  }

  /// Marks the finished graph as symmetric (built from undirected input).
  void MarkSymmetric() { symmetric_ = true; }

  /// Number of edges added so far.
  size_t num_pending_edges() const { return edges_.size(); }

  /// Sorts adjacency, optionally removes duplicate edges and self-loops,
  /// and produces the immutable graph. The builder is consumed.
  StatusOr<Graph> Build(bool dedupe = true, bool drop_self_loops = false) &&;

 private:
  NodeId num_nodes_;
  bool symmetric_ = false;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace simpush

#endif  // SIMPUSH_GRAPH_GRAPH_BUILDER_H_
