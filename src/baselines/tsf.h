// TSF baseline [28] (index-based).
//
// Index: R_g "one-way graphs", each sampling exactly one in-neighbor
// (parent) per node. Within a one-way graph the reverse walk from any
// node is deterministic, so two walks meet iff their parent chains
// collide. Query: for each one-way graph, sample R_q query walks from u
// over the *original* graph; at each step ℓ, every node v whose
// deterministic chain reaches the walk's position at depth ℓ (found by
// descending the child-tree ℓ levels) is credited c^ℓ.
//
// This reimplementation intentionally keeps the two flaws §2.2 quotes
// from [33] — multiple meetings are all counted (overestimation) and
// walks are truncated at `max_depth` — because they are part of TSF's
// reported accuracy profile in Figs. 4-5.

#ifndef SIMPUSH_BASELINES_TSF_H_
#define SIMPUSH_BASELINES_TSF_H_

#include <cstdint>
#include <vector>

#include "baselines/single_source.h"

namespace simpush {

/// TSF tuning knobs (paper sweep: (R_g, R_q) from (10,2) to (600,80)).
struct TsfOptions {
  double decay = 0.6;
  uint32_t num_one_way_graphs = 100;  ///< R_g.
  uint32_t reuse_per_graph = 20;      ///< R_q.
  uint32_t max_depth = 10;            ///< Walk truncation depth T.
  uint64_t seed = 19;
};

/// Index-based TSF implementation.
class Tsf : public SingleSourceAlgorithm {
 public:
  Tsf(const Graph& graph, const TsfOptions& options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "TSF"; }
  Status Prepare() override;
  StatusOr<std::vector<double>> Query(NodeId u) override;
  size_t IndexBytes() const override;
  double PrepareSeconds() const override { return prepare_seconds_; }
  bool index_free() const override { return false; }

  /// Persists the built one-way graphs. FailedPrecondition before
  /// Prepare().
  Status SaveIndex(const std::string& path) const;

  /// Loads an index written by SaveIndex for the *same* graph and
  /// matching (R_g, T) options; marks the instance prepared.
  Status LoadIndex(const std::string& path);

 private:
  const Graph& graph_;
  TsfOptions options_;
  // One-way graphs stored as child CSR: children_offsets_[g][p] ..
  // children_offsets_[g][p+1] index children_nodes_[g] (nodes whose
  // sampled parent is p).
  std::vector<std::vector<uint32_t>> children_offsets_;
  std::vector<std::vector<NodeId>> children_nodes_;
  double prepare_seconds_ = 0.0;
  bool prepared_ = false;
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_TSF_H_
