// READS baseline [12] (index-based).
//
// Index: r √c-walks of depth <= t from *every* node, stored inverted:
// for each walk slot i, a hash map (step, node) -> sources whose i-th
// walk visits `node` at `step`. Query: replay the query node's i-th walk
// and collect, per candidate v, the earliest step at which v's i-th walk
// coincides (first meeting); s̃(u,v) = (#slots with a meeting)/r.
// Pairing slot i of u with slot i of v keeps the trials independent
// across slots and unbiased per slot, exactly as READS does.
//
// Deviation from [12]: the original compresses walks into SA-forests to
// share suffixes; we store them uncompressed — same estimator and query
// path, larger constant in index size (conservative for Fig. 6, where
// READS is already the memory-heaviest method).

#ifndef SIMPUSH_BASELINES_READS_H_
#define SIMPUSH_BASELINES_READS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baselines/single_source.h"

namespace simpush {

/// READS tuning knobs (paper sweep: (r, t) from (10,2) to (1000,20)).
struct ReadsOptions {
  double decay = 0.6;
  uint32_t num_walks = 100;  ///< r walks per node.
  uint32_t max_depth = 10;   ///< t walk truncation depth.
  uint64_t seed = 17;
};

/// Index-based READS implementation.
class Reads : public SingleSourceAlgorithm {
 public:
  Reads(const Graph& graph, const ReadsOptions& options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "READS"; }
  Status Prepare() override;
  StatusOr<std::vector<double>> Query(NodeId u) override;
  size_t IndexBytes() const override;
  double PrepareSeconds() const override { return prepare_seconds_; }
  bool index_free() const override { return false; }

  /// Persists the built index (walk tables + inverted maps are rebuilt
  /// from the walk tables on load). FailedPrecondition before Prepare().
  Status SaveIndex(const std::string& path) const;

  /// Loads an index written by SaveIndex for the *same* graph and
  /// (r, t) options; replaces any built state and marks the instance
  /// prepared. The graph/option fingerprint in the file is checked.
  Status LoadIndex(const std::string& path);

  /// Incrementally repairs the index after the in-neighborhood of
  /// `node` changed in `current` (the post-update graph snapshot): every
  /// stored walk that visits `node` is resampled from that visit onward
  /// against `current`, as in READS's dynamic maintenance. Cost is
  /// proportional to the number of affected walk suffixes, not to a
  /// full rebuild. After repairing all touched nodes of an update
  /// batch, Query must be called with score vectors sized to `current`
  /// — callers keep the Reads instance bound to a stable node-id space
  /// (no node insertions).
  ///
  /// The `current` graph must have the same node count as the build
  /// graph; FailedPrecondition before Prepare().
  Status RepairAfterInNeighborhoodChange(const Graph& current, NodeId node);

  /// Structural self-check: every stored walk transition x -> y must
  /// satisfy y ∈ I(x) in `current`, and the inverted maps must mirror
  /// the walk tables exactly. O(index size); used by tests and after
  /// repair sequences.
  Status ValidateIndex(const Graph& current) const;

 private:
  // Walk positions: walks_[i][v] is flattened; position of node v's
  // i-th walk at step s (1-based) is walk_steps_[i][size_t(v)*t + s-1],
  // kInvalidNode past the walk's end.
  const Graph& graph_;
  ReadsOptions options_;
  std::vector<std::vector<NodeId>> walk_steps_;  // [r][n*t]
  // inverted_[i]: key (step<<32 | node) -> list of sources.
  std::vector<std::unordered_map<uint64_t, std::vector<NodeId>>> inverted_;
  double prepare_seconds_ = 0.0;
  bool prepared_ = false;
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_READS_H_
