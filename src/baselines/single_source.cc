#include "baselines/single_source.h"

// Interface-only translation unit.
