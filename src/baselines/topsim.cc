#include "baselines/topsim.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace simpush {

StatusOr<std::vector<double>> TopSim::Query(NodeId u) {
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  const NodeId n = graph_.num_nodes();
  const double sqrt_c = std::sqrt(options_.decay);
  std::vector<double> scores(n, 0.0);

  // Phase 1: reverse expansion from u — truncated/pruned hitting
  // probabilities ĥ^(ℓ)(u, ·) for ℓ = 1..T.
  std::vector<std::unordered_map<NodeId, double>> reverse(options_.depth + 1);
  reverse[0].emplace(u, 1.0);
  for (uint32_t level = 0; level < options_.depth; ++level) {
    // Expansion budget: keep only the H most probable frontier nodes.
    std::vector<std::pair<NodeId, double>> frontier(reverse[level].begin(),
                                                    reverse[level].end());
    if (frontier.size() > options_.expansion_budget) {
      std::partial_sort(
          frontier.begin(), frontier.begin() + options_.expansion_budget,
          frontier.end(),
          [](const auto& a, const auto& b) { return a.second > b.second; });
      frontier.resize(options_.expansion_budget);
    }
    for (const auto& [v, p] : frontier) {
      if (p < options_.trim_threshold) continue;
      const uint32_t deg = graph_.InDegree(v);
      if (deg == 0) continue;
      // High-degree pruning: expanding a hub yields tiny per-neighbor
      // shares at large cost; TopSim skips them.
      if (deg > options_.degree_threshold) continue;
      const double share = sqrt_c * p / deg;
      for (NodeId vp : graph_.InNeighbors(v)) {
        reverse[level + 1][vp] += share;
      }
    }
  }

  // Phase 2: for each meeting level ℓ, push the meeting mass forward ℓ
  // steps along out-edges; arriving mass at v contributes
  // ĥ^(ℓ)(u,w)·ĥ^(ℓ)(v,w) summed over w (no first-meeting exclusion).
  std::unordered_map<NodeId, double> forward;
  std::unordered_map<NodeId, double> forward_next;
  for (uint32_t level = 1; level <= options_.depth; ++level) {
    forward.clear();
    // Seed: weight ĥ^(ℓ)(u,w) at each meeting node w; the forward pass
    // multiplies by ĥ^(ℓ)(v,w) edge product cumulatively.
    for (const auto& [w, p] : reverse[level]) {
      if (p >= options_.trim_threshold) forward.emplace(w, p);
    }
    for (uint32_t hop = 0; hop < level; ++hop) {
      forward_next.clear();
      for (const auto& [x, p] : forward) {
        if (p < options_.trim_threshold * options_.trim_threshold) continue;
        for (NodeId v : graph_.OutNeighbors(x)) {
          forward_next[v] += sqrt_c * p / graph_.InDegree(v);
        }
      }
      std::swap(forward, forward_next);
    }
    for (const auto& [v, p] : forward) {
      if (v != u) scores[v] += p;
    }
  }
  scores[u] = 1.0;
  return scores;
}

}  // namespace simpush
