#include "baselines/probesim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "walk/walker.h"

namespace simpush {

ProbeSim::ProbeSim(const Graph& graph, const ProbeSimOptions& options)
    : graph_(graph),
      options_(options),
      sqrt_c_(std::sqrt(options.decay)),
      rng_(options.seed) {}

uint64_t ProbeSim::NumWalks() const {
  const double n = static_cast<double>(graph_.num_nodes());
  const double walks = std::log(2.0 * n / options_.delta) /
                       (2.0 * options_.epsilon * options_.epsilon);
  uint64_t result = static_cast<uint64_t>(std::ceil(std::max(walks, 1.0)));
  if (options_.max_walks > 0) result = std::min(result, options_.max_walks);
  return result;
}

StatusOr<std::vector<double>> ProbeSim::Query(NodeId u) {
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  const NodeId n = graph_.num_nodes();
  const uint64_t num_walks = NumWalks();
  std::vector<double> scores(n, 0.0);
  Walker walker(graph_, sqrt_c_);
  Rng rng = rng_.Fork();

  // Probe scratch: probability mass per node at the current expansion
  // depth, with touched lists to avoid O(n) clears per level.
  std::vector<double> mass(n, 0.0);
  std::vector<double> mass_next(n, 0.0);
  std::vector<NodeId> touched;
  std::vector<NodeId> touched_next;

  const double inv_walks = 1.0 / static_cast<double>(num_walks);
  const double trim = options_.trim_ratio * options_.epsilon;
  for (uint64_t i = 0; i < num_walks; ++i) {
    const Walk walk = walker.SampleWalk(u, &rng);
    const size_t length = walk.length();
    // Probe each step ℓ of the sampled walk.
    for (size_t probe_step = 1; probe_step <= length; ++probe_step) {
      const NodeId meet_node = walk.positions[probe_step];
      // Expand from meet_node back toward step-0 nodes v: after j
      // expansion hops, mass[v] is the probability a √c-walk from v is
      // at meet_node at step probe_step given it follows this reverse
      // path, with first-meeting exclusion applied at each hop.
      touched.clear();
      mass[meet_node] = 1.0;
      touched.push_back(meet_node);
      for (size_t hop = 0; hop < probe_step; ++hop) {
        // Nodes at reverse depth `hop` correspond to walk step
        // probe_step - hop. Exclusion: a walk from v that sits on the
        // sampled walk's node at an *earlier* matching step would have
        // first-met before probe_step; zero that mass.
        const size_t walk_step = probe_step - hop;
        touched_next.clear();
        for (NodeId x : touched) {
          const double p = mass[x];
          mass[x] = 0.0;
          if (p <= trim) continue;
          for (NodeId v : graph_.OutNeighbors(x)) {
            // A √c-walk from v steps to x w.p. √c/d_I(v).
            const double share = sqrt_c_ * p / graph_.InDegree(v);
            // Exclusion check: v at step walk_step-1 equals the sampled
            // walk's node there -> earlier first meeting, skip.
            if (walk_step >= 2 && v == walk.positions[walk_step - 1]) {
              continue;
            }
            if (mass_next[v] == 0.0) touched_next.push_back(v);
            mass_next[v] += share;
          }
        }
        std::swap(mass, mass_next);
        std::swap(touched, touched_next);
      }
      for (NodeId v : touched) {
        if (v != u) scores[v] += mass[v] * inv_walks;
        mass[v] = 0.0;
      }
      touched.clear();
    }
  }
  scores[u] = 1.0;
  return scores;
}

}  // namespace simpush
