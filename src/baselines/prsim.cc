#include "baselines/prsim.h"

#include <algorithm>
#include <cmath>

#include "baselines/eta_estimator.h"
#include "common/serialize.h"
#include "common/timer.h"

namespace simpush {

namespace {
// Push threshold and level horizon shared by index build and query.
struct PushParams {
  double theta;
  uint32_t max_level;
};

PushParams ParamsFor(double epsilon, double sqrt_c) {
  PushParams p;
  p.theta = epsilon / 4.0;
  p.max_level = static_cast<uint32_t>(
      std::ceil(std::log(1.0 / p.theta) / std::log(1.0 / sqrt_c)));
  return p;
}
}  // namespace

std::vector<PRSim::IndexEntry> PRSim::BackwardPush(NodeId w, double theta,
                                                   uint32_t max_level) const {
  const double sqrt_c = std::sqrt(options_.decay);
  std::vector<IndexEntry> out;
  std::unordered_map<NodeId, double> current;
  std::unordered_map<NodeId, double> next;
  current.emplace(w, 1.0);
  for (uint32_t level = 1; level <= max_level && !current.empty(); ++level) {
    next.clear();
    for (const auto& [x, p] : current) {
      if (p < theta) continue;
      for (NodeId v : graph_.OutNeighbors(x)) {
        next[v] += sqrt_c * p / graph_.InDegree(v);
      }
    }
    for (const auto& [v, p] : next) {
      if (p >= theta) out.push_back({level, v, static_cast<float>(p)});
    }
    std::swap(current, next);
  }
  return out;
}

Status PRSim::Prepare() {
  if (prepared_) return Status::OK();
  Timer timer;
  const double sqrt_c = std::sqrt(options_.decay);
  const NodeId n = graph_.num_nodes();

  eta_ = EstimateEtaAllNodes(graph_, sqrt_c, options_.eta_samples,
                             options_.seed);

  // Hub selection: top-j0 nodes by in-degree (the meeting-probability
  // mass concentrates on high in-degree nodes in power-law graphs).
  uint32_t j0 = options_.num_hubs;
  if (j0 == 0) {
    j0 = static_cast<uint32_t>(std::ceil(std::sqrt(double(n))));
  }
  j0 = std::min<uint32_t>(j0, n);
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + j0, order.end(),
                    [this](NodeId a, NodeId b) {
                      return graph_.InDegree(a) > graph_.InDegree(b);
                    });

  const PushParams params = ParamsFor(options_.epsilon, sqrt_c);
  hub_of_node_.clear();
  hub_index_.assign(j0, {});
  for (uint32_t slot = 0; slot < j0; ++slot) {
    const NodeId w = order[slot];
    hub_of_node_.emplace(w, slot);
    hub_index_[slot] = BackwardPush(w, params.theta, params.max_level);
  }
  prepare_seconds_ = timer.ElapsedSeconds();
  prepared_ = true;
  return Status::OK();
}

size_t PRSim::IndexBytes() const {
  size_t bytes = eta_.capacity() * sizeof(double);
  bytes += hub_of_node_.size() * (sizeof(NodeId) + sizeof(uint32_t) + 16);
  bytes += hub_index_.capacity() * sizeof(std::vector<IndexEntry>);
  for (const auto& list : hub_index_) {
    bytes += list.capacity() * sizeof(IndexEntry);
  }
  return bytes;
}

StatusOr<std::vector<double>> PRSim::Query(NodeId u) {
  if (!prepared_) {
    SIMPUSH_RETURN_NOT_OK(Prepare());
  }
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  const double sqrt_c = std::sqrt(options_.decay);
  const PushParams params = ParamsFor(options_.epsilon, sqrt_c);

  std::vector<double> scores(graph_.num_nodes(), 0.0);
  std::unordered_map<NodeId, double> current;
  std::unordered_map<NodeId, double> next;
  current.emplace(u, 1.0);
  for (uint32_t level = 1; level <= params.max_level && !current.empty();
       ++level) {
    next.clear();
    for (const auto& [v, p] : current) {
      if (p < params.theta) continue;
      const uint32_t deg = graph_.InDegree(v);
      if (deg == 0) continue;
      const double share = sqrt_c * p / deg;
      for (NodeId vp : graph_.InNeighbors(v)) {
        next[vp] += share;
      }
    }
    for (const auto& [w, h_uw] : next) {
      if (h_uw < params.theta) continue;
      const double weighted = h_uw * eta_[w];
      auto hub_it = hub_of_node_.find(w);
      if (hub_it != hub_of_node_.end()) {
        // Fast path: index lookup.
        for (const IndexEntry& entry : hub_index_[hub_it->second]) {
          if (entry.level != level) continue;
          scores[entry.v] += weighted * entry.h;
        }
      } else {
        // Slow path: online backward push from the non-hub meeting
        // node (the cost PRSim's power-law assumption tries to bound).
        for (const IndexEntry& entry :
             BackwardPush(w, params.theta, level)) {
          if (entry.level != level) continue;
          scores[entry.v] += weighted * entry.h;
        }
      }
    }
    std::swap(current, next);
  }
  scores[u] = 1.0;
  return scores;
}


namespace {
constexpr char kPRSimMagic[4] = {'P', 'R', 'S', '1'};
}

Status PRSim::SaveIndex(const std::string& path) const {
  if (!prepared_) {
    return Status::FailedPrecondition("SaveIndex before Prepare");
  }
  SIMPUSH_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(path));
  writer.WriteMagic(kPRSimMagic);
  writer.Write<uint32_t>(graph_.num_nodes());
  writer.Write<uint64_t>(graph_.num_edges());
  writer.Write<double>(options_.decay);
  writer.Write<double>(options_.epsilon);
  writer.WriteVector(eta_);
  // Hub map as parallel (node, slot) vectors.
  std::vector<NodeId> hub_nodes;
  std::vector<uint32_t> hub_slots;
  hub_nodes.reserve(hub_of_node_.size());
  hub_slots.reserve(hub_of_node_.size());
  for (const auto& [node, slot] : hub_of_node_) {
    hub_nodes.push_back(node);
    hub_slots.push_back(slot);
  }
  writer.WriteVector(hub_nodes);
  writer.WriteVector(hub_slots);
  writer.Write<uint64_t>(hub_index_.size());
  for (const auto& list : hub_index_) {
    writer.WriteVector(list);
  }
  return writer.Finish();
}

Status PRSim::LoadIndex(const std::string& path) {
  SIMPUSH_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  SIMPUSH_RETURN_NOT_OK(reader.ExpectMagic(kPRSimMagic));
  uint32_t n = 0;
  uint64_t m = 0;
  double decay = 0, epsilon = 0;
  SIMPUSH_RETURN_NOT_OK(reader.Read(&n));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&m));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&decay));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&epsilon));
  if (n != graph_.num_nodes() || m != graph_.num_edges()) {
    return Status::InvalidArgument("index was built for a different graph");
  }
  if (decay != options_.decay || epsilon != options_.epsilon) {
    return Status::InvalidArgument("index was built with different options");
  }
  SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&eta_));
  if (eta_.size() != n) return Status::IOError("eta table has wrong size");
  std::vector<NodeId> hub_nodes;
  std::vector<uint32_t> hub_slots;
  SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&hub_nodes));
  SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&hub_slots));
  if (hub_nodes.size() != hub_slots.size()) {
    return Status::IOError("hub map arrays disagree");
  }
  uint64_t num_hub_lists = 0;
  SIMPUSH_RETURN_NOT_OK(reader.Read(&num_hub_lists));
  if (num_hub_lists > n) return Status::IOError("too many hub lists");
  hub_of_node_.clear();
  for (size_t i = 0; i < hub_nodes.size(); ++i) {
    if (hub_nodes[i] >= n || hub_slots[i] >= num_hub_lists) {
      return Status::IOError("hub map entry out of range");
    }
    hub_of_node_[hub_nodes[i]] = hub_slots[i];
  }
  hub_index_.assign(num_hub_lists, {});
  for (auto& list : hub_index_) {
    SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&list));
    for (const IndexEntry& entry : list) {
      if (entry.v >= n) return Status::IOError("index entry out of range");
    }
  }
  prepare_seconds_ = 0.0;
  prepared_ = true;
  return Status::OK();
}

}  // namespace simpush
