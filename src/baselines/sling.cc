#include "baselines/sling.h"

#include <cmath>
#include <unordered_map>

#include "baselines/eta_estimator.h"
#include "common/serialize.h"
#include "common/timer.h"

namespace simpush {

double Sling::PushThreshold() const { return options_.epsilon / 4.0; }

Status Sling::Prepare() {
  if (prepared_) return Status::OK();
  Timer timer;
  const double sqrt_c = std::sqrt(options_.decay);
  const NodeId n = graph_.num_nodes();

  // Part 1: η(w) for all nodes.
  eta_ = EstimateEtaAllNodes(graph_, sqrt_c, options_.eta_samples,
                             options_.seed);

  // Part 2: reverse hitting lists. A backward push from w along
  // out-edges computes h^(ℓ)(v, w) for growing ℓ until all residues
  // fall below θ. This mirrors the forward push of Source-Push but
  // anchored at the *target* side.
  const double theta = PushThreshold();
  const uint32_t max_level = static_cast<uint32_t>(
      std::ceil(std::log(1.0 / theta) / std::log(1.0 / sqrt_c)));
  reverse_index_.assign(n, {});
  std::unordered_map<NodeId, double> current;
  std::unordered_map<NodeId, double> next;
  for (NodeId w = 0; w < n; ++w) {
    current.clear();
    current.emplace(w, 1.0);
    for (uint32_t level = 1; level <= max_level && !current.empty();
         ++level) {
      next.clear();
      for (const auto& [x, p] : current) {
        if (p < theta) continue;
        for (NodeId v : graph_.OutNeighbors(x)) {
          next[v] += sqrt_c * p / graph_.InDegree(v);
        }
      }
      for (const auto& [v, p] : next) {
        if (p >= theta) {
          reverse_index_[w].push_back(
              {level, v, static_cast<float>(p)});
        }
      }
      std::swap(current, next);
    }
  }
  prepare_seconds_ = timer.ElapsedSeconds();
  prepared_ = true;
  return Status::OK();
}

size_t Sling::IndexBytes() const {
  size_t bytes = eta_.capacity() * sizeof(double);
  bytes += reverse_index_.capacity() * sizeof(std::vector<IndexEntry>);
  for (const auto& list : reverse_index_) {
    bytes += list.capacity() * sizeof(IndexEntry);
  }
  return bytes;
}

StatusOr<std::vector<double>> Sling::Query(NodeId u) {
  if (!prepared_) {
    SIMPUSH_RETURN_NOT_OK(Prepare());
  }
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  const double sqrt_c = std::sqrt(options_.decay);
  const double theta = PushThreshold();
  const uint32_t max_level = static_cast<uint32_t>(
      std::ceil(std::log(1.0 / theta) / std::log(1.0 / sqrt_c)));

  std::vector<double> scores(graph_.num_nodes(), 0.0);
  // Forward push from u along in-edges: h^(ℓ)(u, w) >= θ.
  std::unordered_map<NodeId, double> current;
  std::unordered_map<NodeId, double> next;
  current.emplace(u, 1.0);
  for (uint32_t level = 1; level <= max_level && !current.empty(); ++level) {
    next.clear();
    for (const auto& [v, p] : current) {
      if (p < theta) continue;
      const uint32_t deg = graph_.InDegree(v);
      if (deg == 0) continue;
      const double share = sqrt_c * p / deg;
      for (NodeId vp : graph_.InNeighbors(v)) {
        next[vp] += share;
      }
    }
    // Join each significant (w, h^(ℓ)(u,w)) with w's index list at the
    // same level.
    for (const auto& [w, h_uw] : next) {
      if (h_uw < theta) continue;
      const double weighted = h_uw * eta_[w];
      for (const IndexEntry& entry : reverse_index_[w]) {
        if (entry.level != level) continue;
        scores[entry.v] += weighted * entry.h;
      }
    }
    std::swap(current, next);
  }
  scores[u] = 1.0;
  return scores;
}

namespace {
constexpr char kSlingMagic[4] = {'S', 'L', 'G', '1'};
}

Status Sling::SaveIndex(const std::string& path) const {
  if (!prepared_) {
    return Status::FailedPrecondition("SaveIndex before Prepare");
  }
  SIMPUSH_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(path));
  writer.WriteMagic(kSlingMagic);
  writer.Write<uint32_t>(graph_.num_nodes());
  writer.Write<uint64_t>(graph_.num_edges());
  writer.Write<double>(options_.decay);
  writer.Write<double>(options_.epsilon);
  writer.WriteVector(eta_);
  for (const auto& list : reverse_index_) {
    writer.WriteVector(list);
  }
  return writer.Finish();
}

Status Sling::LoadIndex(const std::string& path) {
  SIMPUSH_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  SIMPUSH_RETURN_NOT_OK(reader.ExpectMagic(kSlingMagic));
  uint32_t n = 0;
  uint64_t m = 0;
  double decay = 0, epsilon = 0;
  SIMPUSH_RETURN_NOT_OK(reader.Read(&n));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&m));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&decay));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&epsilon));
  if (n != graph_.num_nodes() || m != graph_.num_edges()) {
    return Status::InvalidArgument("index was built for a different graph");
  }
  if (decay != options_.decay || epsilon != options_.epsilon) {
    return Status::InvalidArgument("index was built with different options");
  }
  SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&eta_));
  if (eta_.size() != n) return Status::IOError("eta table has wrong size");
  reverse_index_.assign(n, {});
  for (NodeId w = 0; w < n; ++w) {
    SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&reverse_index_[w]));
    for (const IndexEntry& entry : reverse_index_[w]) {
      if (entry.v >= n) return Status::IOError("index entry out of range");
    }
  }
  prepare_seconds_ = 0.0;  // loading is not preprocessing
  prepared_ = true;
  return Status::OK();
}

}  // namespace simpush
