// Common interface implemented by every single-source SimRank algorithm
// in this repository (SimPush and the six baselines of §5.1), so the
// evaluation harness can sweep methods uniformly.

#ifndef SIMPUSH_BASELINES_SINGLE_SOURCE_H_
#define SIMPUSH_BASELINES_SINGLE_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Abstract single-source SimRank algorithm.
class SingleSourceAlgorithm {
 public:
  virtual ~SingleSourceAlgorithm() = default;

  /// Human-readable method name, e.g. "SimPush", "ProbeSim".
  virtual std::string name() const = 0;

  /// Builds the index, if the method has one. Index-free methods return
  /// OK immediately. Must be called once before Query.
  virtual Status Prepare() { return Status::OK(); }

  /// Answers s̃(u, ·). The returned vector has size n with entry u == 1.
  virtual StatusOr<std::vector<double>> Query(NodeId u) = 0;

  /// Bytes held by the method's index (0 for index-free methods).
  virtual size_t IndexBytes() const { return 0; }

  /// Seconds spent in the last Prepare() call.
  virtual double PrepareSeconds() const { return 0.0; }

  /// True when the method requires no precomputation (ProbeSim, TopSim,
  /// SimPush, MonteCarlo).
  virtual bool index_free() const { return IndexBytes() == 0; }
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_SINGLE_SOURCE_H_
