#include "baselines/eta_estimator.h"

#include "walk/walker.h"

namespace simpush {

double EstimateEta(const Graph& graph, double sqrt_c, NodeId w,
                   uint32_t samples, Rng* rng) {
  Walker walker(graph, sqrt_c);
  uint32_t never_met = 0;
  for (uint32_t i = 0; i < samples; ++i) {
    if (!walker.PairWalkMeets(w, w, rng)) ++never_met;
  }
  return static_cast<double>(never_met) / static_cast<double>(samples);
}

std::vector<double> EstimateEtaAllNodes(const Graph& graph, double sqrt_c,
                                        uint32_t samples_per_node,
                                        uint64_t seed) {
  const NodeId n = graph.num_nodes();
  std::vector<double> eta(n, 1.0);
  Rng rng(seed);
  for (NodeId w = 0; w < n; ++w) {
    // Nodes with < 2 in-neighbors: two walks from w take the same forced
    // first step (if any); they meet immediately iff d_I(w) == 1 and
    // both survive. Sampling handles this uniformly; no special case.
    eta[w] = EstimateEta(graph, sqrt_c, w, samples_per_node, &rng);
  }
  return eta;
}

}  // namespace simpush
