// ProbeSim baseline [21] (index-free state of the art before SimPush).
//
// Estimator (Eq. 5): s(u,v) = Σ_ℓ Σ_w f^(ℓ)(u,v,w), the probability that
// √c-walks from u and v first meet at w at step ℓ. ProbeSim samples
// √c-walks W(u) = (u, w_1, ..., w_t); for each step ℓ it "probes" w_ℓ —
// a deterministic reverse expansion along out-edges computing, for every
// node v, the probability that a √c-walk from v is at w_ℓ at step ℓ
// *without* having met the sampled walk at any earlier step (the
// exclusion that makes the meeting a first meeting). The average over
// sampled walks is an unbiased estimate of s(u, v).
//
// Deviation from [21]: the original interleaves sampling with a
// per-probe randomized trimming; we implement the deterministic probe,
// which preserves unbiasedness and the O(n·log(n/δ)/ε²) behaviour that
// Table 1 reports.

#ifndef SIMPUSH_BASELINES_PROBESIM_H_
#define SIMPUSH_BASELINES_PROBESIM_H_

#include <cstdint>
#include <vector>

#include "baselines/single_source.h"
#include "common/rng.h"

namespace simpush {

/// ProbeSim tuning knobs.
struct ProbeSimOptions {
  double decay = 0.6;
  /// Absolute error threshold ε_a (the paper sweeps
  /// {0.5, 0.1, 0.05, 0.01, 0.005}).
  double epsilon = 0.05;
  double delta = 1e-4;
  uint64_t seed = 7;
  /// Optional cap on sampled walks (0 = use the Hoeffding formula
  /// ⌈ln(2n/δ)/(2ε²)⌉; the formula is what the guarantee needs but is
  /// expensive for tiny ε, mirroring the paper's reported slow queries).
  uint64_t max_walks = 0;
  /// Probe pruning: probability mass below trim_ratio·ε is dropped
  /// during the reverse expansion (the reference implementation prunes
  /// equivalently; total induced error <= trim_ratio·ε per level).
  /// 0 disables pruning.
  double trim_ratio = 0.02;
};

/// Index-free ProbeSim implementation.
class ProbeSim : public SingleSourceAlgorithm {
 public:
  ProbeSim(const Graph& graph, const ProbeSimOptions& options);

  std::string name() const override { return "ProbeSim"; }
  StatusOr<std::vector<double>> Query(NodeId u) override;
  bool index_free() const override { return true; }

  /// Number of walks the current options imply.
  uint64_t NumWalks() const;

 private:
  const Graph& graph_;
  ProbeSimOptions options_;
  double sqrt_c_;
  Rng rng_;
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_PROBESIM_H_
