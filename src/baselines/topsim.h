// TopSim baseline [15] (index-free, truncated expansion).
//
// TopSim enumerates the reverse-walk neighbourhood of the query node up
// to depth T and estimates similarity by pairing each reverse path with
// forward expansions back to candidate nodes. Characteristic features
// reproduced here (they drive its accuracy/time profile in Figs. 4-5):
//   * hard truncation at depth T (the quality-guarantee flaw §2.2 notes);
//   * per-level expansion budget H (only the H highest-probability
//     frontier nodes are expanded);
//   * high-degree pruning: nodes with in-degree > 1/h are not expanded
//     during the reverse phase;
//   * walk-probability trimming threshold η;
//   * no last-meeting correction (first-meeting overlap is ignored,
//     overestimating s).
//
// Estimate: s̃(u,v) = Σ_{ℓ<=T} Σ_w ĥ^(ℓ)(u,w)·ĥ^(ℓ)(v,w) over the
// retained meeting nodes w, where ĥ are the truncated/pruned hitting
// probabilities.

#ifndef SIMPUSH_BASELINES_TOPSIM_H_
#define SIMPUSH_BASELINES_TOPSIM_H_

#include <cstdint>
#include <vector>

#include "baselines/single_source.h"

namespace simpush {

/// TopSim tuning knobs (paper sweep: (T, 1/h) with H = 100, η = 0.001).
struct TopSimOptions {
  double decay = 0.6;
  uint32_t depth = 3;                ///< T.
  uint32_t degree_threshold = 1000;  ///< 1/h: skip reverse expansion above.
  uint32_t expansion_budget = 100;   ///< H: frontier nodes expanded/level.
  double trim_threshold = 0.001;     ///< η: drop probabilities below.
};

/// Index-free TopSim implementation.
class TopSim : public SingleSourceAlgorithm {
 public:
  TopSim(const Graph& graph, const TopSimOptions& options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "TopSim"; }
  StatusOr<std::vector<double>> Query(NodeId u) override;
  bool index_free() const override { return true; }

 private:
  const Graph& graph_;
  TopSimOptions options_;
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_TOPSIM_H_
