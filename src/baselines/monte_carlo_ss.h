// Naive Monte-Carlo single-source baseline: the classical estimator
// (paper §6, Fogaras & Rácz [5]) that pairs √c-walks from u with
// √c-walks from every candidate v. Exposed through the common interface
// so the harness can use it as a sanity reference on small graphs; it is
// quadratic-ish and not part of the paper's main comparison.

#ifndef SIMPUSH_BASELINES_MONTE_CARLO_SS_H_
#define SIMPUSH_BASELINES_MONTE_CARLO_SS_H_

#include <cstdint>

#include "baselines/single_source.h"

namespace simpush {

/// Monte-Carlo single-source options.
struct MonteCarloSsOptions {
  double decay = 0.6;
  uint64_t samples_per_pair = 2000;
  uint64_t seed = 23;
};

/// Pairwise Monte-Carlo single-source SimRank (reference baseline).
class MonteCarloSs : public SingleSourceAlgorithm {
 public:
  MonteCarloSs(const Graph& graph, const MonteCarloSsOptions& options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "MonteCarlo"; }
  StatusOr<std::vector<double>> Query(NodeId u) override;
  bool index_free() const override { return true; }

 private:
  const Graph& graph_;
  MonteCarloSsOptions options_;
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_MONTE_CARLO_SS_H_
