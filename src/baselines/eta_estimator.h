// Monte-Carlo estimation of the last-meeting probability η(w) used by
// SLING and PRSim (§2.2, Eq. 3): the probability that two independent
// √c-walks started at w never meet at the same node and step. Both
// index-based baselines precompute η for all nodes, which is the bulk
// of their preprocessing cost — exactly the cost SimPush avoids by
// defining γ over G_u instead.

#ifndef SIMPUSH_BASELINES_ETA_ESTIMATOR_H_
#define SIMPUSH_BASELINES_ETA_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace simpush {

/// Estimates η(w) for every node by `samples_per_node` paired-walk
/// trials each. O(n·samples/(1-√c)) total expected steps.
std::vector<double> EstimateEtaAllNodes(const Graph& graph, double sqrt_c,
                                        uint32_t samples_per_node,
                                        uint64_t seed);

/// Estimates η(w) for a single node (used online by PRSim for non-hub
/// meeting nodes and by tests).
double EstimateEta(const Graph& graph, double sqrt_c, NodeId w,
                   uint32_t samples, Rng* rng);

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_ETA_ESTIMATOR_H_
