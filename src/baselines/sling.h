// SLING baseline [31] (index-based).
//
// Index (two parts, both rebuilt from scratch on any graph change —
// the cost SimPush's index-free design removes):
//   1. η(w) for every node w, estimated by paired-walk sampling;
//   2. for every node w, the reverse hitting-probability lists
//      {(ℓ, v, h^(ℓ)(v, w)) : h^(ℓ)(v, w) >= θ} computed by a
//      deterministic backward push from w along out-edges.
// Query (Eq. 3): forward push from u collects {(ℓ, w, h^(ℓ)(u,w)) >= θ};
// each hit is joined with w's index list:
//   s̃(u,v) += h^(ℓ)(u,w) · η(w) · h^(ℓ)(v,w).
//
// The per-node lists make the index an order of magnitude larger than
// the graph (as [33] reports and Fig. 6 shows) — reproduced here.

#ifndef SIMPUSH_BASELINES_SLING_H_
#define SIMPUSH_BASELINES_SLING_H_

#include <cstdint>
#include <vector>

#include "baselines/single_source.h"

namespace simpush {

/// SLING tuning knobs (paper sweep: ε_a in {0.5, 0.1, 0.05, 0.01, 0.005}).
struct SlingOptions {
  double decay = 0.6;
  double epsilon = 0.05;  ///< Absolute error budget ε_a.
  double delta = 1e-4;
  uint64_t seed = 11;
  uint32_t eta_samples = 500;   ///< Paired walks per node for η(w).
};

/// Index-based SLING implementation.
class Sling : public SingleSourceAlgorithm {
 public:
  Sling(const Graph& graph, const SlingOptions& options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "SLING"; }
  Status Prepare() override;
  StatusOr<std::vector<double>> Query(NodeId u) override;
  size_t IndexBytes() const override;
  double PrepareSeconds() const override { return prepare_seconds_; }
  bool index_free() const override { return false; }

  /// Push threshold θ derived from ε (θ = (1-√c)·ε/√c scaled for the
  /// three-way error split SLING uses; we take θ = ε/4 like the
  /// reference implementation's default split).
  double PushThreshold() const;

  /// Persists the built index (η plus per-node reverse lists).
  /// FailedPrecondition before Prepare().
  Status SaveIndex(const std::string& path) const;

  /// Loads an index written by SaveIndex for the *same* graph and ε;
  /// replaces built state and marks the instance prepared. The
  /// graph/option fingerprint in the file is checked.
  Status LoadIndex(const std::string& path);

 private:
  struct IndexEntry {
    uint32_t level;
    NodeId v;
    float h;  // h^(level)(v, w)
  };

  const Graph& graph_;
  SlingOptions options_;
  std::vector<double> eta_;
  // reverse_index_[w]: entries sorted by level.
  std::vector<std::vector<IndexEntry>> reverse_index_;
  double prepare_seconds_ = 0.0;
  bool prepared_ = false;
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_SLING_H_
