#include "baselines/monte_carlo_ss.h"

#include <cmath>

#include "common/rng.h"
#include "exact/monte_carlo.h"
#include "walk/walker.h"

namespace simpush {

StatusOr<std::vector<double>> MonteCarloSs::Query(NodeId u) {
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  const NodeId n = graph_.num_nodes();
  Walker walker(graph_, std::sqrt(options_.decay));
  Rng rng(options_.seed ^ u);
  std::vector<double> scores(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (v == u) {
      scores[v] = 1.0;
      continue;
    }
    scores[v] =
        EstimateSimRankPair(walker, u, v, options_.samples_per_pair, &rng);
  }
  return scores;
}

}  // namespace simpush
