#include "baselines/tsf.h"

#include <cmath>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "walk/walker.h"

namespace simpush {

Status Tsf::Prepare() {
  if (prepared_) return Status::OK();
  Timer timer;
  const NodeId n = graph_.num_nodes();
  Rng rng(options_.seed);

  children_offsets_.assign(options_.num_one_way_graphs, {});
  children_nodes_.assign(options_.num_one_way_graphs, {});
  std::vector<NodeId> parent(n);
  for (uint32_t g = 0; g < options_.num_one_way_graphs; ++g) {
    // Sample one parent (in-neighbor) per node; kInvalidNode if none.
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t deg = graph_.InDegree(v);
      parent[v] = deg == 0
                      ? kInvalidNode
                      : graph_.InNeighborAt(
                            v, static_cast<uint32_t>(rng.NextBounded(deg)));
    }
    // Invert into a child CSR.
    auto& offsets = children_offsets_[g];
    auto& nodes = children_nodes_[g];
    offsets.assign(size_t(n) + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (parent[v] != kInvalidNode) ++offsets[parent[v] + 1];
    }
    for (NodeId p = 0; p < n; ++p) offsets[p + 1] += offsets[p];
    nodes.resize(offsets[n]);
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      if (parent[v] != kInvalidNode) nodes[cursor[parent[v]]++] = v;
    }
  }
  prepare_seconds_ = timer.ElapsedSeconds();
  prepared_ = true;
  return Status::OK();
}

size_t Tsf::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& offsets : children_offsets_) {
    bytes += offsets.capacity() * sizeof(uint32_t);
  }
  for (const auto& nodes : children_nodes_) {
    bytes += nodes.capacity() * sizeof(NodeId);
  }
  return bytes;
}

StatusOr<std::vector<double>> Tsf::Query(NodeId u) {
  if (!prepared_) {
    SIMPUSH_RETURN_NOT_OK(Prepare());
  }
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  const NodeId n = graph_.num_nodes();
  std::vector<double> scores(n, 0.0);
  Rng rng(options_.seed ^ (0x9E3779B97F4A7C15ULL + u));
  const double c = options_.decay;
  const double norm = 1.0 / (static_cast<double>(options_.num_one_way_graphs) *
                             options_.reuse_per_graph);

  // Scratch frontier for child-tree descent.
  std::vector<NodeId> frontier;
  std::vector<NodeId> frontier_next;

  for (uint32_t g = 0; g < options_.num_one_way_graphs; ++g) {
    const auto& offsets = children_offsets_[g];
    const auto& children = children_nodes_[g];
    for (uint32_t q = 0; q < options_.reuse_per_graph; ++q) {
      // Query walk over the original graph (uniform in-neighbor steps;
      // decay applied analytically as c^l below).
      NodeId pos = u;
      double weight = 1.0;
      for (uint32_t step = 1; step <= options_.max_depth; ++step) {
        const uint32_t deg = graph_.InDegree(pos);
        if (deg == 0) break;
        pos = graph_.InNeighborAt(pos,
                                  static_cast<uint32_t>(rng.NextBounded(deg)));
        weight *= c;
        // All nodes whose deterministic chain is at `pos` after `step`
        // steps: descend the child tree `step` levels from pos.
        frontier.clear();
        frontier.push_back(pos);
        for (uint32_t d = 0; d < step && !frontier.empty(); ++d) {
          frontier_next.clear();
          for (NodeId x : frontier) {
            for (uint32_t k = offsets[x]; k < offsets[x + 1]; ++k) {
              frontier_next.push_back(children[k]);
            }
          }
          std::swap(frontier, frontier_next);
        }
        for (NodeId v : frontier) {
          if (v != u) scores[v] += weight * norm;  // multi-meet allowed
        }
      }
    }
  }
  scores[u] = 1.0;
  return scores;
}


namespace {
constexpr char kTsfMagic[4] = {'T', 'S', 'F', '1'};
}

Status Tsf::SaveIndex(const std::string& path) const {
  if (!prepared_) {
    return Status::FailedPrecondition("SaveIndex before Prepare");
  }
  SIMPUSH_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(path));
  writer.WriteMagic(kTsfMagic);
  writer.Write<uint32_t>(graph_.num_nodes());
  writer.Write<uint64_t>(graph_.num_edges());
  writer.Write<double>(options_.decay);
  writer.Write<uint32_t>(options_.num_one_way_graphs);
  writer.Write<uint32_t>(options_.max_depth);
  for (uint32_t g = 0; g < options_.num_one_way_graphs; ++g) {
    writer.WriteVector(children_offsets_[g]);
    writer.WriteVector(children_nodes_[g]);
  }
  return writer.Finish();
}

Status Tsf::LoadIndex(const std::string& path) {
  SIMPUSH_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  SIMPUSH_RETURN_NOT_OK(reader.ExpectMagic(kTsfMagic));
  uint32_t n = 0, rg = 0, depth = 0;
  uint64_t m = 0;
  double decay = 0;
  SIMPUSH_RETURN_NOT_OK(reader.Read(&n));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&m));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&decay));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&rg));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&depth));
  if (n != graph_.num_nodes() || m != graph_.num_edges()) {
    return Status::InvalidArgument("index was built for a different graph");
  }
  if (decay != options_.decay || rg != options_.num_one_way_graphs ||
      depth != options_.max_depth) {
    return Status::InvalidArgument("index was built with different options");
  }
  children_offsets_.assign(rg, {});
  children_nodes_.assign(rg, {});
  for (uint32_t g = 0; g < rg; ++g) {
    SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&children_offsets_[g]));
    SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&children_nodes_[g]));
    if (children_offsets_[g].size() != size_t(n) + 1) {
      return Status::IOError("one-way graph offsets have wrong size");
    }
    for (NodeId child : children_nodes_[g]) {
      if (child >= n) return Status::IOError("one-way child out of range");
    }
  }
  prepare_seconds_ = 0.0;
  prepared_ = true;
  return Status::OK();
}

}  // namespace simpush
