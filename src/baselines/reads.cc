#include "baselines/reads.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "walk/walker.h"

namespace simpush {

namespace {
inline uint64_t StepNodeKey(uint32_t step, NodeId node) {
  return (static_cast<uint64_t>(step) << 32) | node;
}
}  // namespace

Status Reads::Prepare() {
  if (prepared_) return Status::OK();
  Timer timer;
  const NodeId n = graph_.num_nodes();
  const uint32_t r = options_.num_walks;
  const uint32_t t = options_.max_depth;
  Walker walker(graph_, std::sqrt(options_.decay));
  Rng rng(options_.seed);

  walk_steps_.assign(r, std::vector<NodeId>(size_t(n) * t, kInvalidNode));
  inverted_.assign(r, {});
  for (uint32_t i = 0; i < r; ++i) {
    auto& steps = walk_steps_[i];
    auto& inv = inverted_[i];
    for (NodeId v = 0; v < n; ++v) {
      NodeId current = v;
      for (uint32_t s = 1; s <= t; ++s) {
        const NodeId next = walker.Step(current, &rng);
        if (next == kInvalidNode) break;
        steps[size_t(v) * t + (s - 1)] = next;
        inv[StepNodeKey(s, next)].push_back(v);
        current = next;
      }
    }
  }
  prepare_seconds_ = timer.ElapsedSeconds();
  prepared_ = true;
  return Status::OK();
}

size_t Reads::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& steps : walk_steps_) {
    bytes += steps.capacity() * sizeof(NodeId);
  }
  for (const auto& inv : inverted_) {
    bytes += inv.size() * (sizeof(uint64_t) + sizeof(std::vector<NodeId>) + 16);
    for (const auto& [key, sources] : inv) {
      (void)key;
      bytes += sources.capacity() * sizeof(NodeId);
    }
  }
  return bytes;
}

StatusOr<std::vector<double>> Reads::Query(NodeId u) {
  if (!prepared_) {
    SIMPUSH_RETURN_NOT_OK(Prepare());
  }
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  const NodeId n = graph_.num_nodes();
  const uint32_t r = options_.num_walks;
  const uint32_t t = options_.max_depth;
  std::vector<double> scores(n, 0.0);
  // met_in_slot[v] == i+1 marks that v already first-met u in slot i.
  std::vector<uint32_t> met_in_slot(n, 0);

  const double inv_r = 1.0 / static_cast<double>(r);
  for (uint32_t i = 0; i < r; ++i) {
    const auto& steps = walk_steps_[i];
    const auto& inv = inverted_[i];
    for (uint32_t s = 1; s <= t; ++s) {
      const NodeId u_pos = steps[size_t(u) * t + (s - 1)];
      if (u_pos == kInvalidNode) break;
      auto it = inv.find(StepNodeKey(s, u_pos));
      if (it == inv.end()) continue;
      for (NodeId v : it->second) {
        if (v == u) continue;
        if (met_in_slot[v] == i + 1) continue;  // already met this slot
        met_in_slot[v] = i + 1;
        scores[v] += inv_r;
      }
    }
  }
  scores[u] = 1.0;
  return scores;
}

Status Reads::RepairAfterInNeighborhoodChange(const Graph& current,
                                              NodeId node) {
  if (!prepared_) {
    return Status::FailedPrecondition("repair before Prepare");
  }
  if (current.num_nodes() != graph_.num_nodes()) {
    return Status::InvalidArgument(
        "repair requires a stable node-id space");
  }
  if (node >= current.num_nodes()) {
    return Status::InvalidArgument("node out of range");
  }
  const uint32_t r = options_.num_walks;
  const uint32_t t = options_.max_depth;
  Walker walker(current, std::sqrt(options_.decay));

  // Helper: erase one occurrence of `source` from an inverted list.
  auto erase_source = [](std::vector<NodeId>& sources, NodeId source) {
    auto it = std::find(sources.begin(), sources.end(), source);
    if (it != sources.end()) {
      *it = sources.back();
      sources.pop_back();
    }
  };

  for (uint32_t i = 0; i < r; ++i) {
    auto& steps = walk_steps_[i];
    auto& inv = inverted_[i];
    // Sources whose slot-i walk visits `node` at any step: transitions
    // taken *out of* `node` used its old in-neighborhood and must be
    // resampled from the first visit onward.
    std::vector<NodeId> affected;
    for (uint32_t s = 1; s <= t; ++s) {
      auto it = inv.find(StepNodeKey(s, node));
      if (it == inv.end()) continue;
      affected.insert(affected.end(), it->second.begin(), it->second.end());
    }
    // The walk *starting* at `node` takes its first transition out of
    // `node` too, even if it never revisits it.
    affected.push_back(node);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());

    for (NodeId v : affected) {
      // Earliest position of this walk at `node` (step 0 for the walk
      // that starts there).
      uint32_t first_visit = t + 1;
      if (v == node) {
        first_visit = 0;
      } else {
        for (uint32_t s = 1; s <= t; ++s) {
          if (steps[size_t(v) * t + (s - 1)] == node) {
            first_visit = s;
            break;
          }
        }
      }
      if (first_visit > t) continue;  // stale inverted entry; skip
      // Deterministic per-(slot, source, node) resampling stream.
      uint64_t state = options_.seed ^
                       (0xD6E8FEB86659FD93ULL * (uint64_t(v) + 1)) ^
                       (0xA3B195354A39B70DULL * (uint64_t(node) + 1)) ^
                       (uint64_t(i) << 32);
      Rng rng(SplitMix64(&state));
      // Drop the old suffix from the inverted maps and the walk row.
      for (uint32_t s = first_visit + 1; s <= t; ++s) {
        const NodeId old_at = steps[size_t(v) * t + (s - 1)];
        if (old_at == kInvalidNode) break;
        auto it = inv.find(StepNodeKey(s, old_at));
        if (it != inv.end()) erase_source(it->second, v);
        steps[size_t(v) * t + (s - 1)] = kInvalidNode;
      }
      // Resample from `node` at step first_visit against `current`.
      NodeId at = node;
      for (uint32_t s = first_visit + 1; s <= t; ++s) {
        const NodeId next = walker.Step(at, &rng);
        if (next == kInvalidNode) break;
        steps[size_t(v) * t + (s - 1)] = next;
        inv[StepNodeKey(s, next)].push_back(v);
        at = next;
      }
    }
  }
  return Status::OK();
}

Status Reads::ValidateIndex(const Graph& current) const {
  if (!prepared_) {
    return Status::FailedPrecondition("validate before Prepare");
  }
  const NodeId n = current.num_nodes();
  const uint32_t r = options_.num_walks;
  const uint32_t t = options_.max_depth;
  for (uint32_t i = 0; i < r; ++i) {
    const auto& steps = walk_steps_[i];
    const auto& inv = inverted_[i];
    size_t walk_entries = 0;
    for (NodeId v = 0; v < n; ++v) {
      NodeId at = v;
      for (uint32_t s = 1; s <= t; ++s) {
        const NodeId next = steps[size_t(v) * t + (s - 1)];
        if (next == kInvalidNode) {
          // The rest of the row must be empty too.
          for (uint32_t s2 = s; s2 <= t; ++s2) {
            if (steps[size_t(v) * t + (s2 - 1)] != kInvalidNode) {
              return Status::Internal("walk row has a gap");
            }
          }
          break;
        }
        // next must be an in-neighbor of the previous position.
        auto in = current.InNeighbors(at);
        if (std::find(in.begin(), in.end(), next) == in.end()) {
          return Status::Internal(
              "walk transition not backed by an in-edge: " +
              std::to_string(at) + " -> " + std::to_string(next));
        }
        // Inverted map must contain this visit exactly.
        auto it = inv.find(StepNodeKey(s, next));
        if (it == inv.end() ||
            std::count(it->second.begin(), it->second.end(), v) != 1) {
          return Status::Internal("inverted map missing a walk visit");
        }
        ++walk_entries;
        at = next;
      }
    }
    size_t inverted_entries = 0;
    for (const auto& [key, sources] : inv) {
      (void)key;
      inverted_entries += sources.size();
    }
    if (inverted_entries != walk_entries) {
      return Status::Internal("inverted map has stale entries");
    }
  }
  return Status::OK();
}

namespace {
constexpr char kReadsMagic[4] = {'R', 'D', 'S', '1'};
}

Status Reads::SaveIndex(const std::string& path) const {
  if (!prepared_) {
    return Status::FailedPrecondition("SaveIndex before Prepare");
  }
  SIMPUSH_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(path));
  writer.WriteMagic(kReadsMagic);
  // Fingerprint: the index is only valid for this exact graph + knobs.
  writer.Write<uint32_t>(graph_.num_nodes());
  writer.Write<uint64_t>(graph_.num_edges());
  writer.Write<uint32_t>(options_.num_walks);
  writer.Write<uint32_t>(options_.max_depth);
  writer.Write<double>(options_.decay);
  // Only the walk tables are stored; the inverted maps are derived.
  for (const auto& steps : walk_steps_) {
    writer.WriteVector(steps);
  }
  return writer.Finish();
}

Status Reads::LoadIndex(const std::string& path) {
  SIMPUSH_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  SIMPUSH_RETURN_NOT_OK(reader.ExpectMagic(kReadsMagic));
  uint32_t n = 0, r = 0, t = 0;
  uint64_t m = 0;
  double decay = 0;
  SIMPUSH_RETURN_NOT_OK(reader.Read(&n));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&m));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&r));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&t));
  SIMPUSH_RETURN_NOT_OK(reader.Read(&decay));
  if (n != graph_.num_nodes() || m != graph_.num_edges()) {
    return Status::InvalidArgument("index was built for a different graph");
  }
  if (r != options_.num_walks || t != options_.max_depth ||
      decay != options_.decay) {
    return Status::InvalidArgument("index was built with different options");
  }

  Timer timer;
  walk_steps_.assign(r, {});
  const uint64_t expected = static_cast<uint64_t>(n) * t;
  for (uint32_t i = 0; i < r; ++i) {
    SIMPUSH_RETURN_NOT_OK(reader.ReadVector(&walk_steps_[i]));
    if (walk_steps_[i].size() != expected) {
      return Status::IOError("walk table has wrong size");
    }
  }
  // Rebuild the inverted (step, node) -> sources maps.
  inverted_.assign(r, {});
  for (uint32_t i = 0; i < r; ++i) {
    const auto& steps = walk_steps_[i];
    auto& inv = inverted_[i];
    for (NodeId v = 0; v < n; ++v) {
      for (uint32_t s = 1; s <= t; ++s) {
        const NodeId at = steps[size_t(v) * t + (s - 1)];
        if (at == kInvalidNode) break;
        if (at >= n) return Status::IOError("walk table node out of range");
        inv[StepNodeKey(s, at)].push_back(v);
      }
    }
  }
  prepare_seconds_ = timer.ElapsedSeconds();
  prepared_ = true;
  return Status::OK();
}

}  // namespace simpush
