// PRSim baseline [33] (index-based state of the art before SimPush).
//
// PRSim links SimRank to ℓ-hop reverse personalized PageRank:
//   π^(ℓ)(u,w) = h^(ℓ)(u,w)·(1-√c),  and (Eq. 4)
//   s(u,v) = 1/(1-√c)² · Σ_ℓ Σ_w π^(ℓ)(u,w)·η(w)·π^(ℓ)(v,w).
// Index: a set of j0 hub nodes (top in-degree, the power-law assumption:
// hubs absorb most meeting probability) with precomputed reverse lists
// {(ℓ, v, π^(ℓ)(v,w))}, plus η(w) for all nodes. Query: forward push
// from u; meetings at hub w are joined against the index; meetings at
// non-hub w fall back to an *online* backward push (the expensive path
// whose frequency the power-law assumption bounds).
//
// Deviation from [33]: π^(ℓ)(u,·) is computed by deterministic forward
// push instead of √c-walk sampling; variance is strictly lower and the
// cost profile (hub hit vs online fallback) is preserved.

#ifndef SIMPUSH_BASELINES_PRSIM_H_
#define SIMPUSH_BASELINES_PRSIM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baselines/single_source.h"

namespace simpush {

/// PRSim tuning knobs (paper sweep: ε_a in {0.5, 0.1, 0.05, 0.01,
/// 0.005}, j0 = √n hubs).
struct PRSimOptions {
  double decay = 0.6;
  double epsilon = 0.05;  ///< Absolute error budget ε_a.
  double delta = 1e-4;
  uint64_t seed = 13;
  uint32_t num_hubs = 0;        ///< j0; 0 means ⌈√n⌉ (paper default).
  uint32_t eta_samples = 500;   ///< Paired walks per node for η(w).
};

/// Index-based PRSim implementation.
class PRSim : public SingleSourceAlgorithm {
 public:
  PRSim(const Graph& graph, const PRSimOptions& options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "PRSim"; }
  Status Prepare() override;
  StatusOr<std::vector<double>> Query(NodeId u) override;
  size_t IndexBytes() const override;
  double PrepareSeconds() const override { return prepare_seconds_; }
  bool index_free() const override { return false; }

  /// Number of hub nodes actually selected.
  size_t NumHubs() const { return hub_of_node_.size(); }

  /// Persists the built index (η, hub map, per-hub reverse lists).
  /// FailedPrecondition before Prepare().
  Status SaveIndex(const std::string& path) const;

  /// Loads an index written by SaveIndex for the *same* graph and ε;
  /// replaces built state and marks the instance prepared.
  Status LoadIndex(const std::string& path);

 private:
  struct IndexEntry {
    uint32_t level;
    NodeId v;
    float h;  // h^(level)(v, w); π = (1-√c)·h applied at query time.
  };

  // Backward push from w producing {(ℓ, v, h^(ℓ)(v,w)) >= θ}.
  std::vector<IndexEntry> BackwardPush(NodeId w, double theta,
                                       uint32_t max_level) const;

  const Graph& graph_;
  PRSimOptions options_;
  std::vector<double> eta_;
  std::unordered_map<NodeId, uint32_t> hub_of_node_;  // node -> hub slot.
  std::vector<std::vector<IndexEntry>> hub_index_;    // per hub slot.
  double prepare_seconds_ = 0.0;
  bool prepared_ = false;
};

}  // namespace simpush

#endif  // SIMPUSH_BASELINES_PRSIM_H_
