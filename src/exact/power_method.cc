#include "exact/power_method.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace simpush {

std::vector<double> SimRankMatrix::Row(NodeId u) const {
  return std::vector<double>(data_.begin() + size_t(u) * n_,
                             data_.begin() + size_t(u + 1) * n_);
}

double SimRankMatrix::MaxAbsDiff(const SimRankMatrix& other) const {
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

StatusOr<SimRankMatrix> ComputeExactSimRank(
    const Graph& graph, const PowerMethodOptions& options) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (n > options.max_nodes) {
    return Status::InvalidArgument(
        "graph too large for dense power method: n=" + std::to_string(n));
  }
  if (options.decay <= 0.0 || options.decay >= 1.0) {
    return Status::InvalidArgument("decay must be in (0,1)");
  }

  SimRankMatrix current(n, 0.0);
  for (NodeId v = 0; v < n; ++v) current(v, v) = 1.0;
  SimRankMatrix next(n, 0.0);

  const double c = options.decay;
  for (uint32_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // next(u,v) = c / (|I(u)||I(v)|) * sum_{u' in I(u), v' in I(v)}
    //             current(u',v'),   then ∨ I.
    // Computed as two sparse one-sided multiplications:
    //   T = Pᵀ * current   (average over in-neighbors of the row index)
    //   next = c * T * P   (average over in-neighbors of the column index)
    // with T materialized row by row to keep memory at 2·n² doubles.
    double max_change = 0.0;
    std::vector<double> t_row(n, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const auto in_u = graph.InNeighbors(u);
      std::fill(t_row.begin(), t_row.end(), 0.0);
      if (!in_u.empty()) {
        const double inv_du = 1.0 / static_cast<double>(in_u.size());
        for (NodeId up : in_u) {
          for (NodeId x = 0; x < n; ++x) {
            t_row[x] += current(up, x) * inv_du;
          }
        }
      }
      for (NodeId v = 0; v < n; ++v) {
        double value = 0.0;
        if (u == v) {
          value = 1.0;
        } else {
          const auto in_v = graph.InNeighbors(v);
          if (!in_v.empty()) {
            double acc = 0.0;
            for (NodeId vp : in_v) acc += t_row[vp];
            value = c * acc / static_cast<double>(in_v.size());
          }
        }
        max_change = std::max(max_change, std::fabs(value - current(u, v)));
        next(u, v) = value;
      }
    }
    std::swap(current, next);
    if (max_change < options.tolerance) break;
  }
  return current;
}

StatusOr<std::vector<double>> ComputeExactSingleSource(
    const Graph& graph, NodeId u, const PowerMethodOptions& options) {
  if (u >= graph.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  SIMPUSH_ASSIGN_OR_RETURN(SimRankMatrix matrix,
                           ComputeExactSimRank(graph, options));
  return matrix.Row(u);
}

}  // namespace simpush
