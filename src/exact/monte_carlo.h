// Pairwise Monte-Carlo SimRank estimation: s(u,v) equals the probability
// that two independent √c-walks from u and v meet (same node, same step,
// both alive) — the first-meeting decomposition of Eq. (5) partitions
// exactly this event. Used to build pooled ground truth on graphs too
// large for the dense power method (paper §5.1 methodology).

#ifndef SIMPUSH_EXACT_MONTE_CARLO_H_
#define SIMPUSH_EXACT_MONTE_CARLO_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "walk/walker.h"

namespace simpush {

/// Options for pairwise MC estimation.
struct MonteCarloOptions {
  double decay = 0.6;          ///< SimRank decay factor c.
  uint64_t num_samples = 100000;
  uint64_t seed = 1;
};

/// Estimates s(u, v) by `num_samples` paired √c-walk trials.
/// Hoeffding: |error| <= sqrt(ln(2/delta) / (2·num_samples)) w.p. 1-delta.
StatusOr<double> EstimateSimRankPair(const Graph& graph, NodeId u, NodeId v,
                                     const MonteCarloOptions& options);

/// Same, reusing a caller-provided walker/rng (for batch ground truth).
double EstimateSimRankPair(const Walker& walker, NodeId u, NodeId v,
                           uint64_t num_samples, Rng* rng);

/// Samples needed so the Hoeffding bound gives |error| <= eps w.p.
/// >= 1 - delta.
uint64_t MonteCarloSamplesFor(double eps, double delta);

}  // namespace simpush

#endif  // SIMPUSH_EXACT_MONTE_CARLO_H_
