#include "exact/monte_carlo.h"

#include <cmath>

namespace simpush {

StatusOr<double> EstimateSimRankPair(const Graph& graph, NodeId u, NodeId v,
                                     const MonteCarloOptions& options) {
  if (u >= graph.num_nodes() || v >= graph.num_nodes()) {
    return Status::InvalidArgument("node out of range");
  }
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (u == v) return 1.0;
  Walker walker(graph, std::sqrt(options.decay));
  Rng rng(options.seed);
  return EstimateSimRankPair(walker, u, v, options.num_samples, &rng);
}

double EstimateSimRankPair(const Walker& walker, NodeId u, NodeId v,
                           uint64_t num_samples, Rng* rng) {
  if (u == v) return 1.0;
  uint64_t meets = 0;
  for (uint64_t i = 0; i < num_samples; ++i) {
    if (walker.PairWalkMeets(u, v, rng)) ++meets;
  }
  return static_cast<double>(meets) / static_cast<double>(num_samples);
}

uint64_t MonteCarloSamplesFor(double eps, double delta) {
  const double n = std::log(2.0 / delta) / (2.0 * eps * eps);
  return static_cast<uint64_t>(std::ceil(n));
}

}  // namespace simpush
