// Exact all-pairs SimRank via the power method of Jeh & Widom:
//   S_{k+1} = (c · Pᵀ S_k P) ∨ I,   S_0 = I,
// where P is the column-normalized reverse transition matrix. Converges
// geometrically with rate c; used as exact ground truth in tests and for
// the small/medium benchmark stand-ins (DESIGN.md §3).

#ifndef SIMPUSH_EXACT_POWER_METHOD_H_
#define SIMPUSH_EXACT_POWER_METHOD_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Dense n×n SimRank matrix. Row-major, S(u,v) symmetric with unit
/// diagonal.
class SimRankMatrix {
 public:
  SimRankMatrix() = default;
  SimRankMatrix(NodeId n, double init) : n_(n), data_(size_t(n) * n, init) {}

  double operator()(NodeId u, NodeId v) const {
    return data_[size_t(u) * n_ + v];
  }
  double& operator()(NodeId u, NodeId v) { return data_[size_t(u) * n_ + v]; }

  NodeId size() const { return n_; }

  /// Copies row u (single-source result) into a dense vector.
  std::vector<double> Row(NodeId u) const;

  /// Max |this - other| over all entries.
  double MaxAbsDiff(const SimRankMatrix& other) const;

 private:
  NodeId n_ = 0;
  std::vector<double> data_;
};

/// Options for the power-method iteration.
struct PowerMethodOptions {
  double decay = 0.6;        ///< SimRank decay factor c.
  double tolerance = 1e-9;   ///< Stop when max entry change < tolerance.
  uint32_t max_iterations = 100;
  NodeId max_nodes = 20000;  ///< Guard against accidental O(n²) blowups.
};

/// Runs the power method to convergence. O(n·m) time per iteration,
/// O(n²) memory; rejects graphs above options.max_nodes.
StatusOr<SimRankMatrix> ComputeExactSimRank(const Graph& graph,
                                            const PowerMethodOptions& options);

/// Convenience: exact single-source vector s(u, ·).
StatusOr<std::vector<double>> ComputeExactSingleSource(
    const Graph& graph, NodeId u, const PowerMethodOptions& options);

}  // namespace simpush

#endif  // SIMPUSH_EXACT_POWER_METHOD_H_
