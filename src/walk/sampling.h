// Neighbor-sampling policies for the walk engine.
//
// A policy maps (node, in-degree, rng) to the index of the in-neighbor
// a walk steps to. The batched kernel (walk_batch.h) and the serial
// Walker are templated on the policy so the per-step dispatch inlines;
// the hierarchy mirrors the naive → alias progression of random-walk
// engines (randgraph's sample.hpp):
//
//   UniformInSampler — naive uniform pick over the in-CSR row: one
//                      bounded draw, no per-node state. The only
//                      correct policy for today's unweighted graphs.
//   AliasInSampler   — per-node alias tables (Vose) flattened parallel
//                      to the in-CSR: O(1) draws from an arbitrary
//                      per-edge weight distribution, ready for when
//                      weighted graphs land. O(m) doubles + O(m)
//                      uint32 of index state, built in O(m).
//
// Determinism: a policy consumes randomness ONLY through the walk's
// own Rng stream (a fixed number of draws per pick — one for uniform,
// two for alias), so swapping execution order of walks can never
// change any walk's trajectory.

#ifndef SIMPUSH_WALK_SAMPLING_H_
#define SIMPUSH_WALK_SAMPLING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Naive uniform in-neighbor pick: index k ~ U[0, deg). Stateless.
class UniformInSampler {
 public:
  /// Index of the in-neighbor to step to. Precondition: deg > 0.
  uint32_t PickIndex(NodeId /*v*/, uint32_t deg, Rng* rng) const {
    return static_cast<uint32_t>(rng->NextBounded(deg));
  }
};

/// Builds one alias row (Vose's method) for `weights` into
/// prob/alias (resized to weights.size()). Non-finite, negative, or
/// all-zero weight vectors are invalid. Exposed for tests and for
/// incremental per-node rebuilds.
Status BuildAliasRow(std::span<const double> weights,
                     std::span<double> prob, std::span<uint32_t> alias);

/// Per-node alias tables over the in-adjacency: O(1) weighted
/// in-neighbor draws. Tables are flattened parallel to the in-CSR
/// (entry for in-edge e lives at index e), so a pick is two array
/// reads at InRowBegin(v) + k — no per-node indirection.
class AliasInSampler {
 public:
  /// Builds tables from per-in-edge weights (weights[e] belongs to the
  /// in-edge at CSR index e; size must equal num_edges). The graph
  /// must outlive the sampler.
  static StatusOr<AliasInSampler> Build(const Graph& graph,
                                        std::span<const double> weights);

  /// Uniform weights — statistically identical to UniformInSampler
  /// (NOT bit-identical: an alias pick consumes two draws per step,
  /// a uniform pick one). Exists so the alias machinery is testable
  /// before weighted graphs land.
  static AliasInSampler Uniform(const Graph& graph);

  /// Index of the in-neighbor to step to. Precondition: deg > 0.
  /// Consumes exactly two draws: slot, then accept/alias coin.
  uint32_t PickIndex(NodeId v, uint32_t deg, Rng* rng) const {
    const EdgeId begin = graph_->InRowBegin(v);
    const uint32_t k = static_cast<uint32_t>(rng->NextBounded(deg));
    return rng->NextDouble() < prob_[begin + k] ? k : alias_[begin + k];
  }

  /// Acceptance probability / alias of slot k of v's row (for tests).
  double ProbAt(NodeId v, uint32_t k) const {
    return prob_[graph_->InRowBegin(v) + k];
  }
  uint32_t AliasAt(NodeId v, uint32_t k) const {
    return alias_[graph_->InRowBegin(v) + k];
  }

 private:
  explicit AliasInSampler(const Graph& graph) : graph_(&graph) {}

  const Graph* graph_;
  std::vector<double> prob_;    // Acceptance threshold per in-edge slot.
  std::vector<uint32_t> alias_; // Fallback slot within the same row.
};

}  // namespace simpush

#endif  // SIMPUSH_WALK_SAMPLING_H_
