// Monte-Carlo estimation of hitting probabilities h^(l)(u, w): the
// probability a √c-walk from u is at node w at step l. Shared by
// Source-Push level detection, tests, and the PRSim baseline.

#ifndef SIMPUSH_WALK_WALK_STATS_H_
#define SIMPUSH_WALK_WALK_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "walk/walker.h"

namespace simpush {

/// Per-level visit counts from a batch of √c-walks out of one source.
///
/// Counts are stored as flat per-level (node, count) vectors sorted by
/// node — recording appends, and the first lookup after a batch of
/// records compacts the level (sort + merge duplicates). That keeps the
/// record path allocation-light and the read path cache-friendly, versus
/// one hash map per level.
class VisitCounts {
 public:
  /// One (node, visit count) entry of a level.
  using LevelCounts = std::vector<std::pair<NodeId, uint64_t>>;

  /// Records that a walk visited `node` at step `level` (level >= 1).
  void Record(uint32_t level, NodeId node);

  /// Compacts every level (sort + merge duplicates). After this, the
  /// const accessors are pure reads and safe to call concurrently —
  /// CountVisits finalizes before returning. Only needed explicitly
  /// when Record is used directly and the counts are then shared
  /// across threads.
  void Finalize();

  /// Visit count H^(l)(u, node).
  uint64_t Count(uint32_t level, NodeId node) const;

  /// Largest level with any visit; 0 when empty.
  uint32_t MaxLevel() const {
    return counts_.empty() ? 0 : static_cast<uint32_t>(counts_.size());
  }

  /// All (node, count) pairs on `level` (1-based), sorted by node.
  const LevelCounts& Level(uint32_t level) const;

 private:
  void Compact(uint32_t index) const;

  // counts_[l-1] holds (node, count) pairs for step l. A level is
  // "dirty" after appends until compacted (sorted, duplicates merged) —
  // lazily, on first read. Lazy compaction mutates under const, so
  // concurrent first-reads of un-finalized counts are not synchronized;
  // call Finalize() first when sharing across threads.
  mutable std::vector<LevelCounts> counts_;
  mutable std::vector<uint8_t> dirty_;
};

/// Samples `num_walks` √c-walks from `source` and tallies visits.
VisitCounts CountVisits(const Walker& walker, NodeId source,
                        uint64_t num_walks, Rng* rng);

/// Exact hitting probabilities h^(l)(u, ·) for l = 0..max_level computed
/// by dense dynamic programming over the in-adjacency (O(m) per level).
/// Used as the reference implementation in tests.
std::vector<std::vector<double>> ExactHittingProbabilities(
    const Graph& graph, NodeId source, uint32_t max_level, double sqrt_c);

}  // namespace simpush

#endif  // SIMPUSH_WALK_WALK_STATS_H_
