// Monte-Carlo estimation of hitting probabilities h^(l)(u, w): the
// probability a √c-walk from u is at node w at step l. Shared by
// Source-Push level detection, tests, and the PRSim baseline.

#ifndef SIMPUSH_WALK_WALK_STATS_H_
#define SIMPUSH_WALK_WALK_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "walk/walker.h"

namespace simpush {

/// Per-level visit counts from a batch of √c-walks out of one source.
class VisitCounts {
 public:
  /// Records that a walk visited `node` at step `level` (level >= 1).
  void Record(uint32_t level, NodeId node);

  /// Visit count H^(l)(u, node).
  uint64_t Count(uint32_t level, NodeId node) const;

  /// Largest level with any visit; 0 when empty.
  uint32_t MaxLevel() const {
    return counts_.empty() ? 0 : static_cast<uint32_t>(counts_.size());
  }

  /// All (node -> count) pairs on `level` (1-based).
  const std::unordered_map<NodeId, uint64_t>& Level(uint32_t level) const;

 private:
  // counts_[l-1] maps node -> visits at step l.
  std::vector<std::unordered_map<NodeId, uint64_t>> counts_;
};

/// Samples `num_walks` √c-walks from `source` and tallies visits.
VisitCounts CountVisits(const Walker& walker, NodeId source,
                        uint64_t num_walks, Rng* rng);

/// Exact hitting probabilities h^(l)(u, ·) for l = 0..max_level computed
/// by dense dynamic programming over the in-adjacency (O(m) per level).
/// Used as the reference implementation in tests.
std::vector<std::vector<double>> ExactHittingProbabilities(
    const Graph& graph, NodeId source, uint32_t max_level, double sqrt_c);

}  // namespace simpush

#endif  // SIMPUSH_WALK_WALK_STATS_H_
