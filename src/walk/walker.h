// √c-walk engine (Definition 2 of the paper): a random walk that at each
// node stops with probability 1-√c, and with probability √c jumps to a
// uniformly random in-neighbor. A node with no in-neighbors always stops.

#ifndef SIMPUSH_WALK_WALKER_H_
#define SIMPUSH_WALK_WALKER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace simpush {

/// One recorded √c-walk: positions[0] is the start node, positions[l] the
/// node reached at step l. The walk stopped after the last position.
struct Walk {
  std::vector<NodeId> positions;
  size_t length() const { return positions.empty() ? 0 : positions.size() - 1; }
};

/// Samples √c-walks over a fixed graph.
class Walker {
 public:
  /// The graph must outlive the walker. `sqrt_c` is √c, e.g. √0.6.
  Walker(const Graph& graph, double sqrt_c) : graph_(graph), sqrt_c_(sqrt_c) {}

  /// Samples one full √c-walk from `start`, recording every position.
  Walk SampleWalk(NodeId start, Rng* rng) const;

  /// Samples a walk and invokes visit(step, node) for each step >= 1
  /// (the start node itself is step 0 and not reported). Avoids
  /// allocating when only the visit sequence matters.
  void SampleWalkVisit(NodeId start, Rng* rng,
                       const std::function<void(uint32_t, NodeId)>& visit) const;

  /// Single transition of a √c-walk: returns kInvalidNode if the walk
  /// stops (decay or dangling node), else the next node.
  NodeId Step(NodeId current, Rng* rng) const;

  /// True iff two independent √c-walks from u and v, sampled with `rng`,
  /// ever meet (same node at the same step while both alive). By the
  /// first-meeting decomposition (Eq. 5) this is a Bernoulli trial with
  /// success probability exactly s(u, v) for u != v.
  bool PairWalkMeets(NodeId u, NodeId v, Rng* rng) const;

  double sqrt_c() const { return sqrt_c_; }
  const Graph& graph() const { return graph_; }

 private:
  const Graph& graph_;
  double sqrt_c_;
};

}  // namespace simpush

#endif  // SIMPUSH_WALK_WALKER_H_
