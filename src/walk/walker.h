// √c-walk engine (Definition 2 of the paper): a random walk that at each
// node stops with probability 1-√c, and with probability √c jumps to a
// uniformly random in-neighbor. A node with no in-neighbors always stops.
//
// The per-step survival trials are i.i.d. Bernoulli(√c), so the number
// of steps a walk survives decay is geometric: P(length >= l) = √c^l.
// The engine samples that length with ONE RNG draw up front (inverse
// CDF) instead of a Bernoulli trial per step — the walk then only draws
// randomness to pick in-neighbors, roughly halving RNG work on the
// level-detection hot path. Walks still end early at dangling nodes.

#ifndef SIMPUSH_WALK_WALKER_H_
#define SIMPUSH_WALK_WALKER_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace simpush {

/// Decay length of a √c-walk from one uniform draw u in [0, 1), via the
/// inverse geometric CDF: P(floor(log_√c(1-u)) >= l) = √c^l. The √c
/// dependence enters through `inv_log_sqrt_c` = 1/log(√c), precomputed
/// by the caller so batched sampling does one log per walk, not two.
/// Capped at `cap`; the !(length < cap) form also catches the inf at
/// u → 1 (survival → 0).
inline uint32_t WalkLengthForUniform(double u, double inv_log_sqrt_c,
                                     uint32_t cap) {
  const double survival = 1.0 - u;  // In (0, 1].
  const double length = std::log(survival) * inv_log_sqrt_c;
  if (!(length < cap)) return cap;
  return static_cast<uint32_t>(length);
}

/// One recorded √c-walk: positions[0] is the start node, positions[l] the
/// node reached at step l. The walk stopped after the last position.
struct Walk {
  std::vector<NodeId> positions;
  size_t length() const { return positions.empty() ? 0 : positions.size() - 1; }
};

/// Samples √c-walks over a fixed graph.
class Walker {
 public:
  /// Decay-length cap: P(length >= 4096) < 1e-18 even at c = 0.98, so
  /// truncation is far below floating-point resolution.
  static constexpr uint32_t kMaxWalkLength = 4096;

  /// The graph must outlive the walker. `sqrt_c` is √c, e.g. √0.6.
  Walker(const Graph& graph, double sqrt_c)
      : graph_(graph),
        sqrt_c_(sqrt_c),
        inv_log_sqrt_c_(1.0 / std::log(sqrt_c)) {}

  /// Samples the decay-determined length of a √c-walk (the number of
  /// survival steps) in a single RNG draw, capped at `cap`.
  uint32_t SampleWalkLength(Rng* rng, uint32_t cap = kMaxWalkLength) const {
    return WalkLengthForUniform(rng->NextDouble(), inv_log_sqrt_c_, cap);
  }

  /// 1/log(√c), for callers batching WalkLengthForUniform draws.
  double inv_log_sqrt_c() const { return inv_log_sqrt_c_; }

  /// Samples one full √c-walk from `start`, recording every position.
  Walk SampleWalk(NodeId start, Rng* rng) const;

  /// Samples a walk and invokes visit(step, node) for each step >= 1
  /// (the start node itself is step 0 and not reported). The callback is
  /// a template parameter so the per-step dispatch inlines — no
  /// std::function on the level-detection hot path.
  template <typename Visit>
  void SampleWalkVisit(NodeId start, Rng* rng, Visit&& visit) const {
    const uint32_t length = SampleWalkLength(rng);
    NodeId current = start;
    for (uint32_t step = 1; step <= length; ++step) {
      const uint32_t deg = graph_.InDegree(current);
      if (deg == 0) return;  // Dangling: the walk must stop.
      current = graph_.InNeighborAt(
          current, static_cast<uint32_t>(rng->NextBounded(deg)));
      visit(step, current);
    }
  }

  /// Single transition of a √c-walk: returns kInvalidNode if the walk
  /// stops (decay or dangling node), else the next node. Used where a
  /// walk's continuation depends on external state (paired walks).
  NodeId Step(NodeId current, Rng* rng) const;

  /// True iff two independent √c-walks from u and v, sampled with `rng`,
  /// ever meet (same node at the same step while both alive). By the
  /// first-meeting decomposition (Eq. 5) this is a Bernoulli trial with
  /// success probability exactly s(u, v) for u != v.
  bool PairWalkMeets(NodeId u, NodeId v, Rng* rng) const;

  double sqrt_c() const { return sqrt_c_; }
  const Graph& graph() const { return graph_; }

 private:
  const Graph& graph_;
  double sqrt_c_;
  double inv_log_sqrt_c_;
};

}  // namespace simpush

#endif  // SIMPUSH_WALK_WALKER_H_
