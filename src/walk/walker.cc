#include "walk/walker.h"

namespace simpush {

NodeId Walker::Step(NodeId current, Rng* rng) const {
  if (!rng->NextBernoulli(sqrt_c_)) return kInvalidNode;
  const uint32_t deg = graph_.InDegree(current);
  if (deg == 0) return kInvalidNode;  // Dangling: the walk must stop.
  return graph_.InNeighborAt(current,
                             static_cast<uint32_t>(rng->NextBounded(deg)));
}

Walk Walker::SampleWalk(NodeId start, Rng* rng) const {
  Walk walk;
  const uint32_t length = SampleWalkLength(rng);
  walk.positions.reserve(length + 1);
  walk.positions.push_back(start);
  NodeId current = start;
  for (uint32_t step = 1; step <= length; ++step) {
    const uint32_t deg = graph_.InDegree(current);
    if (deg == 0) break;
    current = graph_.InNeighborAt(
        current, static_cast<uint32_t>(rng->NextBounded(deg)));
    walk.positions.push_back(current);
  }
  return walk;
}

bool Walker::PairWalkMeets(NodeId u, NodeId v, Rng* rng) const {
  // Both walks' decay lengths are sampled up front (one draw each); the
  // walks then advance in lockstep until the shorter one stops — a
  // meeting requires the same step index on both walks.
  const uint32_t length =
      std::min(SampleWalkLength(rng), SampleWalkLength(rng));
  NodeId a = u;
  NodeId b = v;
  for (uint32_t step = 1; step <= length; ++step) {
    const uint32_t deg_a = graph_.InDegree(a);
    if (deg_a == 0) return false;
    a = graph_.InNeighborAt(a, static_cast<uint32_t>(rng->NextBounded(deg_a)));
    const uint32_t deg_b = graph_.InDegree(b);
    if (deg_b == 0) return false;
    b = graph_.InNeighborAt(b, static_cast<uint32_t>(rng->NextBounded(deg_b)));
    if (a == b) return true;
  }
  return false;
}

}  // namespace simpush
