#include "walk/walker.h"

namespace simpush {

NodeId Walker::Step(NodeId current, Rng* rng) const {
  if (!rng->NextBernoulli(sqrt_c_)) return kInvalidNode;
  const uint32_t deg = graph_.InDegree(current);
  if (deg == 0) return kInvalidNode;  // Dangling: the walk must stop.
  return graph_.InNeighborAt(current,
                             static_cast<uint32_t>(rng->NextBounded(deg)));
}

Walk Walker::SampleWalk(NodeId start, Rng* rng) const {
  Walk walk;
  walk.positions.push_back(start);
  NodeId current = start;
  while (true) {
    const NodeId next = Step(current, rng);
    if (next == kInvalidNode) break;
    walk.positions.push_back(next);
    current = next;
  }
  return walk;
}

void Walker::SampleWalkVisit(
    NodeId start, Rng* rng,
    const std::function<void(uint32_t, NodeId)>& visit) const {
  NodeId current = start;
  uint32_t step = 0;
  while (true) {
    const NodeId next = Step(current, rng);
    if (next == kInvalidNode) break;
    ++step;
    visit(step, next);
    current = next;
  }
}

bool Walker::PairWalkMeets(NodeId u, NodeId v, Rng* rng) const {
  NodeId a = u;
  NodeId b = v;
  // Both walks advance in lockstep; if either stops, no further meeting
  // (a meeting requires the same step index on both walks).
  while (true) {
    a = Step(a, rng);
    if (a == kInvalidNode) return false;
    b = Step(b, rng);
    if (b == kInvalidNode) return false;
    if (a == b) return true;
  }
}

}  // namespace simpush
