// Batched structure-of-arrays √c-walk kernel.
//
// The serial walk loop (Walker::SampleWalkVisit) advances one walk at a
// time through dependent in-CSR loads: every step is a pointer chase,
// so the CPU eats one full cache miss per step with zero memory-level
// parallelism. This kernel instead runs a *wave* of W walks in lockstep
// over SoA state (current[], remaining[], a live count with swap-to-back
// retirement) and splits each step into three passes:
//
//   1. prefetch the offset-row entries of all W current nodes,
//   2. pick each walk's next in-edge (degree read + one policy draw)
//      and prefetch the in-CSR entry it lands on,
//   3. advance every walk to its picked neighbor, fire the visit
//      callback, and retire finished walks by swapping them behind the
//      live prefix.
//
// By the time pass 2 reads a degree (and pass 3 a neighbor), the loads
// of the other W-1 walks are already in flight — misses overlap instead
// of serializing, which is where the speedup comes from.
//
// Determinism contract: lockstep interleaving reorders RNG consumption
// across walks, so the kernel never shares an RNG between walks.
// Each walk i draws from its own counter-based stream
// Rng::ForWalk(walk_seed, start, i) — a pure function of
// (seed, node, walk_index) — and consumes a fixed draw schedule (one
// length draw, then the policy's fixed draws-per-pick per step). Walk
// order is therefore a free variable: serial execution, any wave size,
// any thread count, or a future SIMD/GPU backend produce bit-identical
// trajectories by construction. tests/determinism_test.cc
// (BatchedEqualsSerialBitIdentical) holds this bar.
//
// Cancellation contract: the token is polled between waves at the
// kCancelCheckStride walk cadence, never inside a wave and never in a
// way that touches an RNG, so an unfired token leaves results
// bit-identical (same contract as the serial loops; common/deadline.h).
//
// All kernel state lives on the stack (kMaxWalkWaveSize-sized arrays),
// preserving the engine's zero-steady-state-allocation invariant.

#ifndef SIMPUSH_WALK_WALK_BATCH_H_
#define SIMPUSH_WALK_WALK_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/deadline.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "walk/sampling.h"
#include "walk/walker.h"

namespace simpush {

/// Default lockstep wave width. 64 walks keep ~64 independent misses in
/// flight — comfortably past typical miss-queue depths — while the SoA
/// state (~3 KiB) stays inside L1. The BM_WalkKernel sweep in
/// bench_micro justifies the choice empirically.
constexpr uint32_t kDefaultWalkWaveSize = 64;

/// Hard cap on the wave width: kernel state is stack-allocated at this
/// size (~13 KiB), and wider waves only dilute cache locality.
constexpr uint32_t kMaxWalkWaveSize = 256;

/// Clamps a requested wave width into [1, kMaxWalkWaveSize].
inline uint32_t ClampWaveSize(uint32_t wave_size) {
  return std::clamp<uint32_t>(wave_size, 1, kMaxWalkWaveSize);
}

/// Runs `num_walks` √c-walks from `start` in lockstep waves, invoking
/// visit(level, node) for every step >= 1 of every walk (level 0 — the
/// start node itself — is not reported), in walk order within each
/// wave pass. Aggregation callbacks must therefore be order-insensitive
/// (the level tally is: see the max_level order-invariance argument in
/// simpush/source_push.cc).
///
/// `walk_seed` keys the counter-based per-walk streams; walk i draws
/// from Rng::ForWalk(walk_seed, start, i) regardless of wave size.
/// `length_cap` bounds each walk's decay length (pass params.l_star —
/// deeper levels are discarded anyway). `inv_log_sqrt_c` is
/// 1/log(√c), precomputed by the caller (Walker::inv_log_sqrt_c()).
/// `policy` picks the in-neighbor index per step (sampling.h); it is a
/// template parameter so the per-step draw inlines.
///
/// Returns the number of walks fully completed. This equals num_walks
/// unless the cancel token fired, in which case the kernel stopped at a
/// wave boundary (partial tallies are the caller's to discard — the
/// caller re-checks the token, same as the serial contract).
template <typename Policy, typename Visit>
uint64_t RunWalkWaves(const Graph& graph, NodeId start, uint64_t walk_seed,
                      uint64_t num_walks, uint32_t length_cap,
                      double inv_log_sqrt_c, const Policy& policy,
                      Visit&& visit, const CancelToken* cancel = nullptr,
                      uint32_t wave_size = kDefaultWalkWaveSize) {
  wave_size = ClampWaveSize(wave_size);
  constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

  // SoA wave state, stack-resident: no allocation at any wave size.
  Rng rng[kMaxWalkWaveSize];
  NodeId current[kMaxWalkWaveSize];
  uint32_t remaining[kMaxWalkWaveSize];
  uint32_t level[kMaxWalkWaveSize];
  EdgeId edge[kMaxWalkWaveSize];

  uint64_t next_poll = 0;
  for (uint64_t base = 0; base < num_walks; base += wave_size) {
    // Cancellation poll at the same stride as the serial loop. State
    // reads only — an unfired token is invisible to the results.
    if (base >= next_poll) {
      if (ShouldStop(cancel)) return base;
      next_poll = base + kCancelCheckStride;
    }
    const uint32_t wave = static_cast<uint32_t>(
        std::min<uint64_t>(wave_size, num_walks - base));

    // Wave init: pin walk base+j to its counter stream and draw all
    // decay lengths up front (one batched pass of log()s). Walks whose
    // length came up 0 retire before taking a step, exactly as the
    // serial loop's empty inner loop.
    uint32_t alive = 0;
    for (uint32_t j = 0; j < wave; ++j) {
      rng[alive] = Rng::ForWalk(walk_seed, start, base + j);
      const uint32_t length_j = WalkLengthForUniform(
          rng[alive].NextDouble(), inv_log_sqrt_c, length_cap);
      if (length_j == 0) continue;
      current[alive] = start;
      remaining[alive] = length_j;
      level[alive] = 0;
      ++alive;
    }

    while (alive > 0) {
      // Pass 1: launch the offset-row loads for every live walk.
      for (uint32_t j = 0; j < alive; ++j) {
        graph.PrefetchInOffsets(current[j]);
      }
      // Pass 2: pick each walk's next in-edge and launch its CSR load.
      // Dangling nodes (no in-neighbors) mark the walk for retirement
      // without a draw, matching the serial loop.
      for (uint32_t j = 0; j < alive; ++j) {
        const uint32_t deg = graph.InDegree(current[j]);
        if (deg == 0) {
          edge[j] = kNoEdge;
          continue;
        }
        const uint32_t k = policy.PickIndex(current[j], deg, &rng[j]);
        edge[j] = graph.InRowBegin(current[j]) + k;
        graph.PrefetchInSource(edge[j]);
      }
      // Pass 3: advance, visit, retire. Retirement swaps the last live
      // walk into the freed slot (edge[] included — its pick is still
      // valid) and reprocesses the slot without advancing j.
      uint32_t j = 0;
      while (j < alive) {
        if (edge[j] != kNoEdge) {
          current[j] = graph.InSourceAt(edge[j]);
          visit(++level[j], current[j]);
          if (--remaining[j] > 0) {
            ++j;
            continue;
          }
        }
        --alive;
        rng[j] = rng[alive];
        current[j] = current[alive];
        remaining[j] = remaining[alive];
        level[j] = level[alive];
        edge[j] = edge[alive];
      }
    }
  }
  return num_walks;
}

/// One-line description of the kernel configuration (wave width, stream
/// scheme, prefetch targets) for bench metadata and logs.
std::string WalkKernelConfigString();

}  // namespace simpush

#endif  // SIMPUSH_WALK_WALK_BATCH_H_
