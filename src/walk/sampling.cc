#include "walk/sampling.h"

#include <cmath>

namespace simpush {

Status BuildAliasRow(std::span<const double> weights, std::span<double> prob,
                     std::span<uint32_t> alias) {
  const size_t n = weights.size();
  if (prob.size() != n || alias.size() != n) {
    return Status::InvalidArgument("alias row output size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("alias weights must be finite and >= 0");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("alias weights must not all be zero");
  }

  // Vose: scale to mean 1, split into under/over-full slots, pair each
  // under-full slot with a donor so every slot needs at most one
  // fallback. Build-time only — never on a query path.
  const double scale = static_cast<double>(n) / total;
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    prob[i] = weights[i] * scale;
    (prob[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    alias[s] = l;
    // The large slot donates (1 - prob[s]) of its mass to s.
    prob[l] -= 1.0 - prob[s];
    if (prob[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly full (modulo rounding): accept always.
  for (uint32_t i : large) {
    prob[i] = 1.0;
    alias[i] = i;
  }
  for (uint32_t i : small) {
    prob[i] = 1.0;
    alias[i] = i;
  }
  return Status::OK();
}

StatusOr<AliasInSampler> AliasInSampler::Build(
    const Graph& graph, std::span<const double> weights) {
  if (weights.size() != graph.num_edges()) {
    return Status::InvalidArgument("need one weight per in-edge");
  }
  AliasInSampler sampler(graph);
  sampler.prob_.resize(weights.size());
  sampler.alias_.resize(weights.size());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t deg = graph.InDegree(v);
    if (deg == 0) continue;
    const size_t begin = static_cast<size_t>(graph.InRowBegin(v));
    SIMPUSH_RETURN_NOT_OK(
        BuildAliasRow(weights.subspan(begin, deg),
                      std::span<double>(sampler.prob_).subspan(begin, deg),
                      std::span<uint32_t>(sampler.alias_).subspan(begin, deg)));
  }
  return sampler;
}

AliasInSampler AliasInSampler::Uniform(const Graph& graph) {
  std::vector<double> weights(graph.num_edges(), 1.0);
  auto sampler = Build(graph, weights);
  // Uniform weights are trivially valid; Build can only fail on size.
  return std::move(sampler).value();
}

}  // namespace simpush
