#include "walk/walk_batch.h"

#include <string>

namespace simpush {

static_assert(kDefaultWalkWaveSize >= 1 &&
                  kDefaultWalkWaveSize <= kMaxWalkWaveSize,
              "default wave must be a legal wave width");
static_assert((kMaxWalkWaveSize & (kMaxWalkWaveSize - 1)) == 0,
              "kMaxWalkWaveSize is a power of two so the cancellation "
              "stride (also a power of two) lands on wave boundaries");
static_assert(kMaxWalkWaveSize <= kCancelCheckStride,
              "a wave must never straddle more than one poll stride, or "
              "the between-wave poll cadence would exceed the contract");

std::string WalkKernelConfigString() {
  return "wave=" + std::to_string(kDefaultWalkWaveSize) +
         ",max_wave=" + std::to_string(kMaxWalkWaveSize) +
         ",streams=counter(seed,node,walk_index),prefetch=offsets+csr";
}

}  // namespace simpush
