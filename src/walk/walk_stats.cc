#include "walk/walk_stats.h"

#include <algorithm>

namespace simpush {

namespace {
const VisitCounts::LevelCounts kEmptyLevel;
}  // namespace

void VisitCounts::Record(uint32_t level, NodeId node) {
  if (level == 0) return;
  if (counts_.size() < level) {
    counts_.resize(level);
    dirty_.resize(level, 0);
  }
  counts_[level - 1].emplace_back(node, 1);
  dirty_[level - 1] = 1;
}

void VisitCounts::Compact(uint32_t index) const {
  LevelCounts& level = counts_[index];
  std::sort(level.begin(), level.end());
  // Merge adjacent duplicates in place, summing counts.
  size_t out = 0;
  for (size_t i = 0; i < level.size();) {
    size_t j = i + 1;
    uint64_t total = level[i].second;
    while (j < level.size() && level[j].first == level[i].first) {
      total += level[j].second;
      ++j;
    }
    level[out++] = {level[i].first, total};
    i = j;
  }
  level.resize(out);
  dirty_[index] = 0;
}

void VisitCounts::Finalize() {
  for (uint32_t index = 0; index < counts_.size(); ++index) {
    if (dirty_[index]) Compact(index);
  }
}

uint64_t VisitCounts::Count(uint32_t level, NodeId node) const {
  if (level == 0 || level > counts_.size()) return 0;
  if (dirty_[level - 1]) Compact(level - 1);
  const LevelCounts& entries = counts_[level - 1];
  auto it = std::lower_bound(
      entries.begin(), entries.end(), node,
      [](const auto& entry, NodeId n) { return entry.first < n; });
  return it == entries.end() || it->first != node ? 0 : it->second;
}

const VisitCounts::LevelCounts& VisitCounts::Level(uint32_t level) const {
  if (level == 0 || level > counts_.size()) return kEmptyLevel;
  if (dirty_[level - 1]) Compact(level - 1);
  return counts_[level - 1];
}

VisitCounts CountVisits(const Walker& walker, NodeId source,
                        uint64_t num_walks, Rng* rng) {
  VisitCounts counts;
  for (uint64_t i = 0; i < num_walks; ++i) {
    walker.SampleWalkVisit(source, rng,
                           [&counts](uint32_t level, NodeId node) {
                             counts.Record(level, node);
                           });
  }
  counts.Finalize();  // Const accessors become pure (thread-safe) reads.
  return counts;
}

std::vector<std::vector<double>> ExactHittingProbabilities(
    const Graph& graph, NodeId source, uint32_t max_level, double sqrt_c) {
  const NodeId n = graph.num_nodes();
  std::vector<std::vector<double>> h(max_level + 1,
                                     std::vector<double>(n, 0.0));
  h[0][source] = 1.0;
  for (uint32_t level = 0; level < max_level; ++level) {
    for (NodeId v = 0; v < n; ++v) {
      const double mass = h[level][v];
      if (mass == 0.0) continue;
      const uint32_t deg = graph.InDegree(v);
      if (deg == 0) continue;
      const double share = sqrt_c * mass / deg;
      for (NodeId w : graph.InNeighbors(v)) {
        h[level + 1][w] += share;
      }
    }
  }
  return h;
}

}  // namespace simpush
