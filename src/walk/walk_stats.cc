#include "walk/walk_stats.h"

namespace simpush {

void VisitCounts::Record(uint32_t level, NodeId node) {
  if (level == 0) return;
  if (counts_.size() < level) counts_.resize(level);
  ++counts_[level - 1][node];
}

uint64_t VisitCounts::Count(uint32_t level, NodeId node) const {
  if (level == 0 || level > counts_.size()) return 0;
  const auto& m = counts_[level - 1];
  auto it = m.find(node);
  return it == m.end() ? 0 : it->second;
}

const std::unordered_map<NodeId, uint64_t>& VisitCounts::Level(
    uint32_t level) const {
  static const std::unordered_map<NodeId, uint64_t> kEmpty;
  if (level == 0 || level > counts_.size()) return kEmpty;
  return counts_[level - 1];
}

VisitCounts CountVisits(const Walker& walker, NodeId source,
                        uint64_t num_walks, Rng* rng) {
  VisitCounts counts;
  for (uint64_t i = 0; i < num_walks; ++i) {
    walker.SampleWalkVisit(source, rng,
                           [&counts](uint32_t level, NodeId node) {
                             counts.Record(level, node);
                           });
  }
  return counts;
}

std::vector<std::vector<double>> ExactHittingProbabilities(
    const Graph& graph, NodeId source, uint32_t max_level, double sqrt_c) {
  const NodeId n = graph.num_nodes();
  std::vector<std::vector<double>> h(max_level + 1,
                                     std::vector<double>(n, 0.0));
  h[0][source] = 1.0;
  for (uint32_t level = 0; level < max_level; ++level) {
    for (NodeId v = 0; v < n; ++v) {
      const double mass = h[level][v];
      if (mass == 0.0) continue;
      const uint32_t deg = graph.InDegree(v);
      if (deg == 0) continue;
      const double share = sqrt_c * mass / deg;
      for (NodeId w : graph.InNeighbors(v)) {
        h[level + 1][w] += share;
      }
    }
  }
  return h;
}

}  // namespace simpush
