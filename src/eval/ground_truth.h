// Ground-truth generation following the paper's §5.1 methodology:
// exact power method on graphs small enough for a dense matrix; the
// pooling method (merge each algorithm's top-k, de-duplicate, evaluate
// each pooled pair by Monte Carlo, re-rank) on larger graphs.

#ifndef SIMPUSH_EVAL_GROUND_TRUTH_H_
#define SIMPUSH_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Exact or pooled ground truth for one query node.
struct GroundTruth {
  NodeId query = kInvalidNode;
  /// Top-k candidates with their (exact or high-precision MC) SimRank,
  /// sorted descending by value.
  std::vector<std::pair<NodeId, double>> topk;
  /// True when produced by the exact power method.
  bool exact = false;
};

/// Options for ground-truth generation.
struct GroundTruthOptions {
  double decay = 0.6;
  size_t k = 50;
  /// Use the dense power method when n <= this bound.
  NodeId exact_node_limit = 3000;
  /// MC samples per pooled pair on large graphs (Hoeffding noise floor
  /// ≈ sqrt(ln(2/δ)/2N); 4e5 samples ≈ 4e-3 at δ=1e-5).
  uint64_t mc_samples_per_pair = 400000;
  uint64_t seed = 101;
};

/// Builds ground truth for `query` from an exact single-source vector
/// (power method). Requires n <= options.exact_node_limit.
StatusOr<GroundTruth> ExactGroundTruth(const Graph& graph, NodeId query,
                                       const GroundTruthOptions& options);

/// Builds pooled ground truth: `candidate_topk_sets` holds each
/// algorithm's top-k node lists for `query`; pooled candidates are
/// scored by pairwise MC and the best k form the truth set.
StatusOr<GroundTruth> PooledGroundTruth(
    const Graph& graph, NodeId query,
    const std::vector<std::vector<NodeId>>& candidate_topk_sets,
    const GroundTruthOptions& options);

/// Generates `count` query nodes uniformly at random (paper §5.1:
/// "100 queries by selecting nodes uniformly at random").
std::vector<NodeId> GenerateQuerySet(const Graph& graph, size_t count,
                                     uint64_t seed);

}  // namespace simpush

#endif  // SIMPUSH_EVAL_GROUND_TRUTH_H_
