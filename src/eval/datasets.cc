#include "eval/datasets.h"

#include "graph/generators.h"

namespace simpush {

// Scaled-down stand-ins: node/edge counts keep each dataset's average
// degree (Table 4) and relative ordering while staying tractable on a
// single core. "large" mirrors the paper's small/large grouping.
const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      // name            paper        n       m        undir  gamma  seed  large
      {"in-2004-sim",    "In-2004",    8000,  96000,   false, 2.1,  9001, false},
      {"dblp-sim",       "DBLP",      16000,  51000,   true,  2.6,  9002, false},
      {"pokec-sim",      "Pokec",      9000, 169000,   false, 2.6,  9003, false},
      {"livejournal-sim","LiveJournal",24000, 339000,  false, 2.5,  9004, false},
      // Large stand-ins use gamma >= 2.3: at 10^5-node scale a lower
      // exponent concentrates ~half of all edges on a handful of hubs,
      // which real web graphs (where these exponents are measured at
      // 10^8-node scale) do not exhibit in the neighborhoods SimRank
      // explores. 2.3-2.5 reproduces realistic hub structure and the
      // paper's observed small L.
      {"it-2004-sim",    "IT-2004",   80000, 2200000,  false, 2.3,  9005, true},
      {"twitter-sim",    "Twitter",   80000, 2820000,  false, 2.3,  9006, true},
      {"friendster-sim", "Friendster",120000, 3300000, true,  2.8,  9007, true},
      {"uk-sim",         "UK",        160000, 6550000, false, 2.35, 9008, true},
      {"clueweb-sim",    "ClueWeb",   300000, 1410000, false, 2.4,  9009, true},
  };
  return kDatasets;
}

std::vector<DatasetSpec> SmallDatasets() {
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& spec : AllDatasets()) {
    if (!spec.large) out.push_back(spec);
  }
  return out;
}

StatusOr<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name || spec.paper_name == name) return spec;
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

StatusOr<Graph> BuildDataset(const DatasetSpec& spec) {
  // Chung-Lu with the spec's exponent; undirected stand-ins get both
  // directions per sampled edge (so target_edges counts directed edges,
  // half as many undirected pairs are drawn).
  const EdgeId pairs = spec.undirected ? spec.target_edges / 2
                                       : spec.target_edges;
  return GenerateChungLu(spec.num_nodes, pairs, spec.gamma, spec.seed,
                         spec.undirected);
}

}  // namespace simpush
