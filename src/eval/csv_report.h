// CSV result sink for the benchmark harness: every figure bench prints
// human-readable tables to stdout and, when SIMPUSH_BENCH_CSV_DIR is
// set, additionally appends machine-readable rows for plotting —
// regenerating the paper's figures from a run is then a gnuplot/
// matplotlib one-liner over these files.
//
// Format rules (RFC-4180 flavored): header row written once per file,
// fields quoted only when they contain a comma/quote/newline, '.' as
// the decimal separator regardless of locale.

#ifndef SIMPUSH_EVAL_CSV_REPORT_H_
#define SIMPUSH_EVAL_CSV_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace simpush {

/// Append-oriented CSV writer with one fixed header.
class CsvWriter {
 public:
  /// Opens (creates or truncates) `path` and writes the header row.
  static StatusOr<CsvWriter> Create(const std::string& path,
                                    const std::vector<std::string>& header);

  CsvWriter(CsvWriter&& other) noexcept;
  CsvWriter& operator=(CsvWriter&& other) noexcept;
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  ~CsvWriter();

  /// Appends one row. InvalidArgument when the field count does not
  /// match the header.
  Status AppendRow(const std::vector<std::string>& fields);

  /// Convenience for mixed rows: doubles rendered with %.6g.
  class RowBuilder {
   public:
    RowBuilder& Add(const std::string& value);
    RowBuilder& Add(double value);
    RowBuilder& Add(uint64_t value);
    const std::vector<std::string>& fields() const { return fields_; }

   private:
    std::vector<std::string> fields_;
  };

  /// Flushes and closes; returns the first error, if any.
  Status Finish();

  size_t num_columns() const { return num_columns_; }

 private:
  CsvWriter(FILE* file, size_t num_columns)
      : file_(file), num_columns_(num_columns) {}
  void WriteRaw(const std::string& line);

  FILE* file_ = nullptr;
  size_t num_columns_ = 0;
  bool failed_ = false;
};

/// Escapes one CSV field per RFC 4180 (quotes only when needed).
std::string CsvEscape(const std::string& field);

/// Directory from SIMPUSH_BENCH_CSV_DIR, or empty when unset.
std::string BenchCsvDir();

}  // namespace simpush

#endif  // SIMPUSH_EVAL_CSV_REPORT_H_
