// Registry of deterministic synthetic stand-ins for the paper's nine
// datasets (Table 4). Real LAW/SNAP dumps are multi-GB downloads
// unavailable offline; each stand-in matches the original's
// directedness and degree character (power-law web/social structure)
// at laptop scale. See DESIGN.md §3 for why this preserves the
// evaluation's shape.

#ifndef SIMPUSH_EVAL_DATASETS_H_
#define SIMPUSH_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace simpush {

/// Descriptor of one synthetic stand-in dataset.
struct DatasetSpec {
  std::string name;        ///< e.g. "in-2004-sim".
  std::string paper_name;  ///< Original dataset it stands in for.
  NodeId num_nodes;
  EdgeId target_edges;     ///< Approximate directed edge count.
  bool undirected;
  double gamma;            ///< Power-law exponent for Chung-Lu.
  uint64_t seed;
  bool large;              ///< Belongs to the paper's "large graph" group.
};

/// All nine stand-ins, ordered as in Table 4.
const std::vector<DatasetSpec>& AllDatasets();

/// The small-graph subset (In-2004, DBLP, Pokec, LiveJournal stand-ins).
std::vector<DatasetSpec> SmallDatasets();

/// Stand-in spec by name; NotFound if absent.
StatusOr<DatasetSpec> FindDataset(const std::string& name);

/// Materializes a stand-in graph (deterministic in the spec's seed).
StatusOr<Graph> BuildDataset(const DatasetSpec& spec);

}  // namespace simpush

#endif  // SIMPUSH_EVAL_DATASETS_H_
