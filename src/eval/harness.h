// Benchmark harness: runs every method over a query set with its five
// paper parameter settings and produces the (time, error, precision,
// memory) rows behind Figures 4-7 and the scaling tables.

#ifndef SIMPUSH_EVAL_HARNESS_H_
#define SIMPUSH_EVAL_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/single_source.h"
#include "common/status.h"
#include "eval/ground_truth.h"
#include "graph/graph.h"

namespace simpush {

/// One method instantiation (a method at one parameter setting).
struct MethodSetting {
  std::string method;   ///< e.g. "SimPush".
  std::string setting;  ///< e.g. "eps=0.02".
  /// Builds a fresh algorithm instance over `graph`.
  std::function<std::unique_ptr<SingleSourceAlgorithm>(const Graph&)> make;
};

/// Aggregated measurements for one method setting over a query set.
struct EvalRow {
  std::string method;
  std::string setting;
  double avg_query_seconds = 0;
  double avg_error_at_k = 0;
  double avg_precision_at_k = 0;
  double prepare_seconds = 0;     ///< Index build time (0 if index-free).
  size_t index_bytes = 0;
  size_t peak_memory_bytes = 0;   ///< Index + graph + query scratch.
  size_t queries = 0;
};

/// Harness configuration.
struct HarnessOptions {
  size_t k = 50;
  size_t num_queries = 20;
  uint64_t query_seed = 4242;
  GroundTruthOptions truth;
};

/// Evaluates one method setting against precomputed ground truths.
/// `truths[i]` corresponds to `queries[i]`.
StatusOr<EvalRow> EvaluateMethod(const Graph& graph,
                                 const MethodSetting& setting,
                                 const std::vector<NodeId>& queries,
                                 const std::vector<GroundTruth>& truths,
                                 const HarnessOptions& options);

/// Builds ground truths for a query set: exact when the graph is small
/// enough, otherwise pooled over the provided methods' top-k results.
StatusOr<std::vector<GroundTruth>> BuildGroundTruths(
    const Graph& graph, const std::vector<NodeId>& queries,
    const std::vector<MethodSetting>& pool_methods,
    const HarnessOptions& options);

/// The paper's five parameter settings for every method (§5.1),
/// optionally scaled for small stand-in graphs. Methods appear in the
/// figure legend order: SimPush, ProbeSim, TopSim, SLING, PRSim, READS,
/// TSF. `which` filters by method name; empty = all.
std::vector<MethodSetting> PaperParameterSweep(
    const std::vector<std::string>& which = {});

/// Prints rows as an aligned table to stdout with a caption.
void PrintEvalTable(const std::string& caption,
                    const std::vector<EvalRow>& rows);

}  // namespace simpush

#endif  // SIMPUSH_EVAL_HARNESS_H_
