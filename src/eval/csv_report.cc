#include "eval/csv_report.h"

#include <cstdlib>

namespace simpush {

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

std::string BenchCsvDir() {
  const char* dir = std::getenv("SIMPUSH_BENCH_CSV_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

StatusOr<CsvWriter> CsvWriter::Create(
    const std::string& path, const std::vector<std::string>& header) {
  if (header.empty()) {
    return Status::InvalidArgument("CSV header must be non-empty");
  }
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  CsvWriter writer(file, header.size());
  Status status = writer.AppendRow(header);
  if (!status.ok()) return status;
  return writer;
}

CsvWriter::CsvWriter(CsvWriter&& other) noexcept
    : file_(other.file_),
      num_columns_(other.num_columns_),
      failed_(other.failed_) {
  other.file_ = nullptr;
}

CsvWriter& CsvWriter::operator=(CsvWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    num_columns_ = other.num_columns_;
    failed_ = other.failed_;
    other.file_ = nullptr;
  }
  return *this;
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CsvWriter::AppendRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer already finished");
  }
  if (fields.size() != num_columns_) {
    return Status::InvalidArgument("row has wrong number of fields");
  }
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ',';
    line += CsvEscape(fields[i]);
  }
  line += '\n';
  WriteRaw(line);
  return failed_ ? Status::IOError("write failed") : Status::OK();
}

void CsvWriter::WriteRaw(const std::string& line) {
  if (failed_ || file_ == nullptr) return;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    failed_ = true;
  }
}

Status CsvWriter::Finish() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer already finished");
  }
  const bool flush_failed = std::fflush(file_) != 0;
  const bool close_failed = std::fclose(file_) != 0;
  file_ = nullptr;
  if (failed_ || flush_failed || close_failed) {
    return Status::IOError("write failed");
  }
  return Status::OK();
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(const std::string& value) {
  fields_.push_back(value);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  fields_.emplace_back(buffer);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(uint64_t value) {
  fields_.push_back(std::to_string(value));
  return *this;
}

}  // namespace simpush
