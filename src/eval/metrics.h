// Accuracy metrics of the paper's §5.1: AvgError@k and Precision@k,
// plus top-k extraction helpers.

#ifndef SIMPUSH_EVAL_METRICS_H_
#define SIMPUSH_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace simpush {

/// Returns the k nodes with highest scores, excluding `exclude`
/// (normally the query node itself, whose s = 1 is trivial).
/// Ties broken by smaller node id for determinism.
std::vector<NodeId> TopK(const std::vector<double>& scores, size_t k,
                         NodeId exclude = kInvalidNode);

/// AvgError@k = (1/k)·Σ_{v in ground-truth top-k} |ŝ(u,v) − s(u,v)|.
/// `truth_topk` pairs (node, exact value); `estimate` is the evaluated
/// method's full score vector.
double AvgErrorAtK(
    const std::vector<std::pair<NodeId, double>>& truth_topk,
    const std::vector<double>& estimate);

/// Precision@k = |V_k ∩ V'_k| / k.
double PrecisionAtK(const std::vector<NodeId>& truth_topk,
                    const std::vector<NodeId>& estimate_topk);

}  // namespace simpush

#endif  // SIMPUSH_EVAL_METRICS_H_
