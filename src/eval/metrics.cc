#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace simpush {

std::vector<NodeId> TopK(const std::vector<double>& scores, size_t k,
                         NodeId exclude) {
  std::vector<NodeId> order;
  order.reserve(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) {
    if (v != exclude) order.push_back(v);
  }
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  order.resize(k);
  return order;
}

double AvgErrorAtK(const std::vector<std::pair<NodeId, double>>& truth_topk,
                   const std::vector<double>& estimate) {
  if (truth_topk.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [node, exact] : truth_topk) {
    total += std::fabs(estimate[node] - exact);
  }
  return total / static_cast<double>(truth_topk.size());
}

double PrecisionAtK(const std::vector<NodeId>& truth_topk,
                    const std::vector<NodeId>& estimate_topk) {
  if (truth_topk.empty()) return 1.0;
  std::unordered_set<NodeId> truth(truth_topk.begin(), truth_topk.end());
  size_t hits = 0;
  for (NodeId v : estimate_topk) {
    if (truth.count(v) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth_topk.size());
}

}  // namespace simpush
