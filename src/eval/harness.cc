#include "eval/harness.h"

#include <cmath>
#include <cstdio>

#include "baselines/probesim.h"
#include "baselines/prsim.h"
#include "baselines/reads.h"
#include "baselines/sling.h"
#include "baselines/topsim.h"
#include "baselines/tsf.h"
#include "common/memory.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "simpush/simpush.h"

namespace simpush {

namespace {

/// Adapter exposing SimPushEngine through the common interface.
class SimPushAdapter : public SingleSourceAlgorithm {
 public:
  SimPushAdapter(const Graph& graph, const SimPushOptions& options)
      : engine_(graph, options) {}
  std::string name() const override { return "SimPush"; }
  StatusOr<std::vector<double>> Query(NodeId u) override {
    SIMPUSH_ASSIGN_OR_RETURN(SimPushResult result, engine_.Query(u));
    return std::move(result.scores);
  }
  bool index_free() const override { return true; }

 private:
  SimPushEngine engine_;
};

std::string FormatSetting(const char* fmt, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  return buffer;
}

}  // namespace

StatusOr<EvalRow> EvaluateMethod(const Graph& graph,
                                 const MethodSetting& setting,
                                 const std::vector<NodeId>& queries,
                                 const std::vector<GroundTruth>& truths,
                                 const HarnessOptions& options) {
  (void)options;  // k is taken from each GroundTruth's pool size.
  EvalRow row;
  row.method = setting.method;
  row.setting = setting.setting;

  std::unique_ptr<SingleSourceAlgorithm> algo = setting.make(graph);
  SIMPUSH_RETURN_NOT_OK(algo->Prepare());
  row.prepare_seconds = algo->PrepareSeconds();
  row.index_bytes = algo->IndexBytes();
  row.peak_memory_bytes = graph.MemoryBytes() + row.index_bytes +
                          graph.num_nodes() * sizeof(double);

  double total_seconds = 0;
  double total_error = 0;
  double total_precision = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    Timer timer;
    SIMPUSH_ASSIGN_OR_RETURN(std::vector<double> scores,
                             algo->Query(queries[i]));
    total_seconds += timer.ElapsedSeconds();

    const GroundTruth& truth = truths[i];
    total_error += AvgErrorAtK(truth.topk, scores);
    std::vector<NodeId> truth_nodes;
    truth_nodes.reserve(truth.topk.size());
    for (const auto& [node, value] : truth.topk) {
      (void)value;
      truth_nodes.push_back(node);
    }
    total_precision += PrecisionAtK(
        truth_nodes, TopK(scores, truth_nodes.size(), queries[i]));
  }
  const double q = static_cast<double>(queries.size());
  row.avg_query_seconds = total_seconds / q;
  row.avg_error_at_k = total_error / q;
  row.avg_precision_at_k = total_precision / q;
  row.queries = queries.size();
  return row;
}

StatusOr<std::vector<GroundTruth>> BuildGroundTruths(
    const Graph& graph, const std::vector<NodeId>& queries,
    const std::vector<MethodSetting>& pool_methods,
    const HarnessOptions& options) {
  std::vector<GroundTruth> truths;
  truths.reserve(queries.size());
  GroundTruthOptions truth_options = options.truth;
  truth_options.k = options.k;

  if (graph.num_nodes() <= truth_options.exact_node_limit) {
    for (NodeId query : queries) {
      SIMPUSH_ASSIGN_OR_RETURN(GroundTruth t,
                               ExactGroundTruth(graph, query, truth_options));
      truths.push_back(std::move(t));
    }
    return truths;
  }

  // Pooling path: collect each pool method's top-k per query.
  std::vector<std::unique_ptr<SingleSourceAlgorithm>> algos;
  for (const MethodSetting& setting : pool_methods) {
    algos.push_back(setting.make(graph));
    SIMPUSH_RETURN_NOT_OK(algos.back()->Prepare());
  }
  for (NodeId query : queries) {
    std::vector<std::vector<NodeId>> candidate_sets;
    for (auto& algo : algos) {
      SIMPUSH_ASSIGN_OR_RETURN(std::vector<double> scores,
                               algo->Query(query));
      candidate_sets.push_back(TopK(scores, options.k, query));
    }
    SIMPUSH_ASSIGN_OR_RETURN(
        GroundTruth t,
        PooledGroundTruth(graph, query, candidate_sets, truth_options));
    truths.push_back(std::move(t));
  }
  return truths;
}

std::vector<MethodSetting> PaperParameterSweep(
    const std::vector<std::string>& which) {
  auto wanted = [&which](const std::string& name) {
    if (which.empty()) return true;
    for (const std::string& w : which) {
      if (w == name) return true;
    }
    return false;
  };

  std::vector<MethodSetting> sweep;

  // NOTE on setting ranges: the paper sweeps each method over five
  // increasingly accurate parameter settings on multi-billion-edge
  // graphs with a 376 GB server. The stand-ins are 3-4 orders of
  // magnitude smaller, so the finest paper settings would dominate
  // runtime without changing who wins; every method below keeps the
  // paper's *methodology* (5 settings, coarse -> fine) with ranges
  // shifted to stand-in scale. Documented in EXPERIMENTS.md.
  if (wanted("SimPush")) {
    for (double eps : {0.1, 0.05, 0.02, 0.01, 0.005}) {
      sweep.push_back(
          {"SimPush", FormatSetting("eps=%g", eps), [eps](const Graph& g) {
             SimPushOptions o;
             o.epsilon = eps;
             o.walk_budget_cap = 30000;
             return std::make_unique<SimPushAdapter>(g, o);
           }});
    }
  }
  if (wanted("ProbeSim")) {
    for (double eps : {0.5, 0.2, 0.1, 0.05, 0.02}) {
      sweep.push_back(
          {"ProbeSim", FormatSetting("eps=%g", eps), [eps](const Graph& g) {
             ProbeSimOptions o;
             o.epsilon = eps;
             o.max_walks = 5000;
             return std::make_unique<ProbeSim>(g, o);
           }});
    }
  }
  if (wanted("TopSim")) {
    // Paper: (T, 1/h) in {(1,10),(3,100),(3,1000),(3,10000),(4,10000)}.
    const std::pair<uint32_t, uint32_t> kTopSim[] = {
        {1, 10}, {3, 100}, {3, 1000}, {3, 10000}, {4, 10000}};
    for (const auto& [depth, inv_h] : kTopSim) {
      char label[64];
      std::snprintf(label, sizeof(label), "T=%u,1/h=%u", depth, inv_h);
      const uint32_t d = depth;
      const uint32_t ih = inv_h;
      sweep.push_back({"TopSim", label, [d, ih](const Graph& g) {
                         TopSimOptions o;
                         o.depth = d;
                         o.degree_threshold = ih;
                         return std::make_unique<TopSim>(g, o);
                       }});
    }
  }
  if (wanted("SLING")) {
    for (double eps : {0.5, 0.2, 0.1, 0.05, 0.02}) {
      sweep.push_back(
          {"SLING", FormatSetting("eps=%g", eps), [eps](const Graph& g) {
             SlingOptions o;
             o.epsilon = eps;
             return std::make_unique<Sling>(g, o);
           }});
    }
  }
  if (wanted("PRSim")) {
    for (double eps : {0.5, 0.2, 0.1, 0.05, 0.02}) {
      sweep.push_back(
          {"PRSim", FormatSetting("eps=%g", eps), [eps](const Graph& g) {
             PRSimOptions o;
             o.epsilon = eps;
             return std::make_unique<PRSim>(g, o);
           }});
    }
  }
  if (wanted("READS")) {
    const std::pair<uint32_t, uint32_t> kReads[] = {
        {10, 2}, {50, 5}, {100, 10}, {200, 10}, {400, 10}};
    for (const auto& [r, t] : kReads) {
      char label[64];
      std::snprintf(label, sizeof(label), "r=%u,t=%u", r, t);
      const uint32_t rr = r;
      const uint32_t tt = t;
      sweep.push_back({"READS", label, [rr, tt](const Graph& g) {
                         ReadsOptions o;
                         o.num_walks = rr;
                         o.max_depth = tt;
                         return std::make_unique<Reads>(g, o);
                       }});
    }
  }
  if (wanted("TSF")) {
    const std::pair<uint32_t, uint32_t> kTsf[] = {
        {10, 2}, {100, 20}, {200, 30}, {300, 40}, {600, 80}};
    for (const auto& [rg, rq] : kTsf) {
      char label[64];
      std::snprintf(label, sizeof(label), "Rg=%u,Rq=%u", rg, rq);
      const uint32_t g_count = rg;
      const uint32_t q_count = rq;
      sweep.push_back({"TSF", label, [g_count, q_count](const Graph& g) {
                         TsfOptions o;
                         o.num_one_way_graphs = g_count;
                         o.reuse_per_graph = q_count;
                         return std::make_unique<Tsf>(g, o);
                       }});
    }
  }
  return sweep;
}

void PrintEvalTable(const std::string& caption,
                    const std::vector<EvalRow>& rows) {
  std::printf("\n== %s ==\n", caption.c_str());
  std::printf("%-10s %-16s %12s %14s %12s %12s %12s\n", "method", "setting",
              "query(ms)", "AvgErr@k", "Prec@k", "prep(s)", "index(MB)");
  for (const EvalRow& row : rows) {
    std::printf("%-10s %-16s %12.3f %14.6f %12.4f %12.2f %12.2f\n",
                row.method.c_str(), row.setting.c_str(),
                row.avg_query_seconds * 1e3, row.avg_error_at_k,
                row.avg_precision_at_k, row.prepare_seconds,
                static_cast<double>(row.index_bytes) / (1024.0 * 1024.0));
  }
}

}  // namespace simpush
