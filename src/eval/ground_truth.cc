#include "eval/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "eval/metrics.h"
#include "exact/monte_carlo.h"
#include "exact/power_method.h"
#include "walk/walker.h"

namespace simpush {

StatusOr<GroundTruth> ExactGroundTruth(const Graph& graph, NodeId query,
                                       const GroundTruthOptions& options) {
  if (graph.num_nodes() > options.exact_node_limit) {
    return Status::InvalidArgument("graph too large for exact ground truth");
  }
  PowerMethodOptions pm;
  pm.decay = options.decay;
  pm.max_nodes = options.exact_node_limit;
  SIMPUSH_ASSIGN_OR_RETURN(std::vector<double> row,
                           ComputeExactSingleSource(graph, query, pm));
  GroundTruth truth;
  truth.query = query;
  truth.exact = true;
  for (NodeId v : TopK(row, options.k, query)) {
    truth.topk.emplace_back(v, row[v]);
  }
  return truth;
}

StatusOr<GroundTruth> PooledGroundTruth(
    const Graph& graph, NodeId query,
    const std::vector<std::vector<NodeId>>& candidate_topk_sets,
    const GroundTruthOptions& options) {
  if (query >= graph.num_nodes()) {
    return Status::InvalidArgument("query node out of range");
  }
  // Merge and de-duplicate the pool (paper §5.1).
  std::unordered_set<NodeId> pool;
  for (const auto& set : candidate_topk_sets) {
    for (NodeId v : set) {
      if (v != query) pool.insert(v);
    }
  }
  Walker walker(graph, std::sqrt(options.decay));
  Rng rng(options.seed ^ query);
  std::vector<std::pair<NodeId, double>> scored;
  scored.reserve(pool.size());
  for (NodeId v : pool) {
    scored.emplace_back(
        v, EstimateSimRankPair(walker, query, v,
                               options.mc_samples_per_pair, &rng));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (scored.size() > options.k) scored.resize(options.k);

  GroundTruth truth;
  truth.query = query;
  truth.exact = false;
  truth.topk = std::move(scored);
  return truth;
}

std::vector<NodeId> GenerateQuerySet(const Graph& graph, size_t count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(
        static_cast<NodeId>(rng.NextBounded(graph.num_nodes())));
  }
  return queries;
}

}  // namespace simpush
